// End-to-end acceptance test for `commsched_cli serve` (DESIGN.md §10):
// spawns the real binary, drives the JSONL protocol over its stdin/stdout,
// and checks the tentpole guarantees —
//   * a served request's `text` is byte-identical to the one-shot CLI run
//     with the same knobs;
//   * a 64-request concurrent mixed burst gets exactly one response per
//     request and the topology cache converges to hits;
//   * SIGTERM drains cleanly: every admitted request is answered, the
//     process exits 0, no response line is lost or truncated.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <netinet/in.h>
#include <set>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "core/commsched.h"

namespace commsched {
namespace {

std::string TempPath(const std::string& name) {
  // Pid-qualified: ctest runs each e2e test as its own process, and two of
  // them sharing an output file is a clobber race under -j.
  return ::testing::TempDir() + "commsched_e2e_" + std::to_string(getpid()) +
         "_" + name;
}

/// Runs the one-shot CLI, returning its stdout. Asserts exit code 0.
std::string RunCli(const std::string& args) {
  const std::string out_path = TempPath("oneshot.out");
  const std::string command = std::string(COMMSCHED_CLI_PATH) + " " + args + " > " + out_path;
  EXPECT_EQ(std::system(command.c_str()), 0) << command;
  std::ifstream in(out_path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// A `commsched_cli serve` child process with pipes on stdin/stdout.
class ServeProcess {
 public:
  explicit ServeProcess(const std::vector<std::string>& extra_args = {},
                        const std::string& command = "serve") {
    int to_child[2];
    int from_child[2];
    CS_CHECK(pipe(to_child) == 0 && pipe(from_child) == 0, "pipe failed");
    pid_ = fork();
    CS_CHECK(pid_ >= 0, "fork failed");
    if (pid_ == 0) {
      dup2(to_child[0], STDIN_FILENO);
      dup2(from_child[1], STDOUT_FILENO);
      close(to_child[0]);
      close(to_child[1]);
      close(from_child[0]);
      close(from_child[1]);
      std::vector<std::string> args = {COMMSCHED_CLI_PATH, command};
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      execv(argv[0], argv.data());
      _exit(127);  // exec failed
    }
    close(to_child[0]);
    close(from_child[1]);
    stdin_fd_ = to_child[1];
    stdout_fd_ = from_child[0];
  }

  ~ServeProcess() {
    if (stdin_fd_ >= 0) close(stdin_fd_);
    if (stdout_fd_ >= 0) close(stdout_fd_);
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
    }
  }

  void Send(const std::string& line) {
    const std::string framed = line + "\n";
    ASSERT_EQ(write(stdin_fd_, framed.data(), framed.size()),
              static_cast<ssize_t>(framed.size()));
  }

  /// Blocking read of the next response line ("" on EOF).
  std::string ReadLine() {
    std::string line;
    char c = 0;
    while (true) {
      const ssize_t got = read(stdout_fd_, &c, 1);
      if (got != 1) return line;  // EOF mid-line: caller sees the fragment
      if (c == '\n') return line;
      line.push_back(c);
    }
  }

  void CloseStdin() {
    close(stdin_fd_);
    stdin_fd_ = -1;
  }

  void Signal(int signo) { kill(pid_, signo); }

  /// Waits for exit and returns the exit code (-1 on abnormal death).
  int Wait() {
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

 private:
  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
};

std::map<std::string, svc::JsonValue> ReadResponses(ServeProcess& serve, std::size_t count) {
  std::map<std::string, svc::JsonValue> by_id;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string line = serve.ReadLine();
    if (line.empty()) break;  // EOF: the caller's count assertion will fire
    svc::JsonValue parsed = svc::ParseJson(line);
    const svc::JsonValue* id = parsed.Find("id");
    if (id == nullptr) {
      ADD_FAILURE() << "response without id: " << line;
      continue;
    }
    by_id.emplace(id->AsString("id"), std::move(parsed));
  }
  return by_id;
}

/// Extracts the ephemeral port from the TCP server's announce line
/// ("listening on 127.0.0.1:<port>").
int AnnouncedPort(ServeProcess& serve) {
  const std::string line = serve.ReadLine();
  const std::size_t colon = line.rfind(':');
  if (colon == std::string::npos) {
    ADD_FAILURE() << "no port in announce line: " << line;
    return -1;
  }
  return std::atoi(line.c_str() + colon + 1);
}

/// Connects to 127.0.0.1:`port`, sends `payload` verbatim, and reads until
/// the peer closes or a newline arrives (`until_eof` picks which).
std::string TcpExchange(int port, const std::string& payload, bool until_eof) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  CS_CHECK(fd >= 0, "socket failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    ADD_FAILURE() << "connect to 127.0.0.1:" << port << " failed";
    return "";
  }
  std::size_t written = 0;
  while (written < payload.size()) {
    const ssize_t put = write(fd, payload.data() + written, payload.size() - written);
    if (put <= 0) break;
    written += static_cast<std::size_t>(put);
  }
  std::string reply;
  char buffer[4096];
  while (true) {
    const ssize_t got = read(fd, buffer, sizeof(buffer));
    if (got <= 0) break;
    reply.append(buffer, static_cast<std::size_t>(got));
    if (!until_eof && reply.find('\n') != std::string::npos) break;
  }
  close(fd);
  return reply;
}

std::string TcpJsonLine(int port, const std::string& request) {
  std::string reply = TcpExchange(port, request + "\n", /*until_eof=*/false);
  const std::size_t newline = reply.find('\n');
  if (newline != std::string::npos) reply.resize(newline);
  return reply;
}

std::string HttpGet(int port, const std::string& path) {
  return TcpExchange(port, "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n",
                     /*until_eof=*/true);
}

TEST(ServiceE2E, ServedTextMatchesOneShotCliByteForByte) {
  ServeProcess serve({"--workers", "2"});
  serve.Send(R"({"id":"sched","op":"schedule","topology":{"kind":"mixed"},"apps":4})");
  serve.Send(
      R"({"id":"sched24","op":"schedule","topology":{"kind":"rings"},"apps":4,"algo":"sd"})");
  serve.Send(
      R"({"id":"sim","op":"simulate","topology":{"kind":"random","switches":12},"apps":4,)"
      R"("mapping":"blocked","points":2,"max_rate":0.4,"warmup":500,"measure":1500})");
  serve.CloseStdin();
  const auto responses = ReadResponses(serve, 3);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(serve.Wait(), 0);

  EXPECT_EQ(responses.at("sched").Find("text")->AsString("text"),
            RunCli("schedule --kind mixed --apps 4"));
  EXPECT_EQ(responses.at("sched24").Find("text")->AsString("text"),
            RunCli("schedule --kind rings --apps 4 --algo sd"));
  EXPECT_EQ(responses.at("sim").Find("text")->AsString("text"),
            RunCli("simulate --kind random --switches 12 --apps 4 --mapping blocked "
                   "--points 2 --max-rate 0.4 --warmup 500 --measure 1500"));
}

TEST(ServiceE2E, ConcurrentMixedBurstAnswersAllAndHitsCache) {
  ServeProcess serve({"--workers", "4", "--queue", "16"});
  std::set<std::string> expected_ids;
  for (int i = 0; i < 64; ++i) {
    const std::string id = "b" + std::to_string(i);
    expected_ids.insert(id);
    switch (i % 4) {
      case 0:
        serve.Send(R"({"id":")" + id +
                   R"(","op":"schedule","topology":{"kind":"mixed"},"apps":4})");
        break;
      case 1:
        serve.Send(R"({"id":")" + id +
                   R"(","op":"schedule","topology":{"kind":"random","switches":12},)"
                   R"("apps":4,"algo":"random","samples":200})");
        break;
      case 2:
        serve.Send(R"({"id":")" + id +
                   R"(","op":"quality","topology":{"kind":"random","switches":12},)"
                   R"("partition":[0,0,0,1,1,1,2,2,2,3,3,3]})");
        break;
      default:
        serve.Send(R"({"id":")" + id + R"(","op":"ping"})");
        break;
    }
  }
  // stats goes last: by the time it is served, earlier duplicates resolved.
  serve.Send(R"({"id":"stats","op":"stats"})");
  serve.CloseStdin();
  const auto responses = ReadResponses(serve, 65);
  ASSERT_EQ(responses.size(), 65u);
  EXPECT_EQ(serve.Wait(), 0);

  for (const std::string& id : expected_ids) {
    ASSERT_TRUE(responses.count(id)) << "lost response for " << id;
    EXPECT_TRUE(responses.at(id).Find("ok")->AsBool("ok")) << id;
  }
  // 64 requests over 2 distinct topologies: the model cache must be hitting.
  const svc::JsonValue& stats = responses.at("stats");
  const svc::JsonValue* model_cache = stats.Find("topology_cache");
  ASSERT_NE(model_cache, nullptr);
  EXPECT_EQ(model_cache->Find("misses")->AsUint("misses"), 2u);
  EXPECT_GT(model_cache->Find("hits")->AsUint("hits"), 0u);
  const svc::JsonValue* result_cache = stats.Find("result_cache");
  ASSERT_NE(result_cache, nullptr);
  EXPECT_GT(result_cache->Find("hits")->AsUint("hits"), 0u);
}

TEST(ServiceE2E, SigtermDrainsWithoutLosingResponses) {
  ServeProcess serve({"--workers", "2"});
  std::set<std::string> expected_ids;
  for (int i = 0; i < 12; ++i) {
    const std::string id = "t" + std::to_string(i);
    expected_ids.insert(id);
    if (i % 3 == 0) {
      serve.Send(R"({"id":")" + id + R"(","op":"sleep","ms":30})");
    } else {
      serve.Send(R"({"id":")" + id +
                 R"(","op":"schedule","topology":{"kind":"mixed"},"apps":4})");
    }
  }
  // Wait until every request has been admitted AND answered, then SIGTERM:
  // the drain contract says the process must still exit 0 with nothing lost.
  const auto responses = ReadResponses(serve, 12);
  ASSERT_EQ(responses.size(), 12u);
  for (const std::string& id : expected_ids) {
    ASSERT_TRUE(responses.count(id)) << "lost response for " << id;
    EXPECT_TRUE(responses.at(id).Find("ok")->AsBool("ok")) << id;
  }
  serve.Signal(SIGTERM);
  EXPECT_EQ(serve.Wait(), 0);
  // After exit, stdout holds no partial line (drain flushed everything).
  EXPECT_EQ(serve.ReadLine(), "");
}

TEST(ServiceE2E, MalformedAndExpiredRequestsGetErrorResponses) {
  ServeProcess serve({"--workers", "1", "--deadline-ms", "60000"});
  serve.Send("{broken json");
  serve.Send(R"({"id":"bad","op":"warp"})");
  serve.Send(R"({"id":"ok","op":"ping"})");
  serve.CloseStdin();
  std::vector<std::string> lines;
  for (int i = 0; i < 3; ++i) lines.push_back(serve.ReadLine());
  EXPECT_EQ(serve.Wait(), 0);
  std::size_t errors = 0;
  std::size_t oks = 0;
  for (const std::string& line : lines) {
    ASSERT_FALSE(line.empty());
    const svc::JsonValue parsed = svc::ParseJson(line);
    if (parsed.Find("ok")->AsBool("ok")) {
      ++oks;
    } else {
      ++errors;
      EXPECT_NE(parsed.Find("error"), nullptr) << line;
    }
  }
  EXPECT_EQ(oks, 1u);
  EXPECT_EQ(errors, 2u);
}

// Observability acceptance (DESIGN.md §12): the TCP listener speaks both
// JSONL and one-shot HTTP; /metrics is Prometheus text whose counters move
// between scrapes under load; `commsched top --once` renders a dashboard.
TEST(ServiceE2E, HttpMetricsScrapeAndTopDashboard) {
  ServeProcess serve({"--listen", "0", "--workers", "2"});
  const int port = AnnouncedPort(serve);
  ASSERT_GT(port, 0);

  // Drive some traffic over the JSONL side of the same listener.
  const std::string sched = TcpJsonLine(
      port, R"({"id":"s1","op":"schedule","topology":{"kind":"mixed"},"apps":4,"timings":true})");
  const svc::JsonValue parsed = svc::ParseJson(sched);
  ASSERT_TRUE(parsed.Find("ok")->AsBool("ok")) << sched;
  EXPECT_EQ(parsed.Find("req")->AsString("req"), "s1");
  ASSERT_NE(parsed.Find("timings"), nullptr) << sched;

  const std::string scrape1 = HttpGet(port, "/metrics");
  EXPECT_NE(scrape1.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(scrape1.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(scrape1.find("# TYPE commsched_svc_requests_total counter"), std::string::npos);
  EXPECT_NE(scrape1.find("commsched_svc_latency_ns_bucket"), std::string::npos);
  EXPECT_NE(scrape1.find("commsched_svc_requests_rate"), std::string::npos);
  EXPECT_NE(scrape1.find("commsched_svc_queue_depth"), std::string::npos);

  // More load, then a second scrape: the served-request counter must move.
  for (int i = 0; i < 3; ++i) {
    TcpJsonLine(port, R"({"id":"p)" + std::to_string(i) + R"(","op":"ping"})");
  }
  const std::string scrape2 = HttpGet(port, "/metrics");
  const auto counter_of = [](const std::string& scrape) {
    const std::string key = "\ncommsched_svc_requests_total ";
    const std::size_t at = scrape.find(key);
    return at == std::string::npos ? -1 : std::atoi(scrape.c_str() + at + key.size());
  };
  EXPECT_GT(counter_of(scrape2), counter_of(scrape1));
  EXPECT_GE(counter_of(scrape1), 1);

  const std::string health = HttpGet(port, "/health");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
  const std::string ready = HttpGet(port, "/ready");
  EXPECT_NE(ready.find("\"ready\":true"), std::string::npos);
  const std::string missing = HttpGet(port, "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

  // The dashboard polls the same stats op over TCP.
  const std::string top =
      RunCli("top --connect 127.0.0.1:" + std::to_string(port) + " --once");
  EXPECT_NE(top.find("req/s"), std::string::npos) << top;
  EXPECT_NE(top.find("served"), std::string::npos) << top;

  serve.Signal(SIGTERM);
  EXPECT_EQ(serve.Wait(), 0);
}

TEST(ServiceE2E, SlowRequestLogCapturesThresholdedRequests) {
  const std::string log_path = TempPath("slow.jsonl");
  std::remove(log_path.c_str());
  ServeProcess serve(
      {"--listen", "0", "--workers", "1", "--slow-ms", "5", "--slow-log", log_path});
  const int port = AnnouncedPort(serve);
  ASSERT_GT(port, 0);

  // One request over the threshold, one under: only the sleep is logged.
  TcpJsonLine(port, R"({"id":"slow","op":"sleep","ms":30})");
  TcpJsonLine(port, R"({"id":"fast","op":"ping"})");
  const std::string stats = TcpJsonLine(port, R"({"id":"st","op":"stats"})");
  EXPECT_NE(stats.find("\"slow\":[{"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"req\":\"slow\""), std::string::npos) << stats;

  serve.Signal(SIGTERM);
  EXPECT_EQ(serve.Wait(), 0);

  std::ifstream log(log_path);
  ASSERT_TRUE(log.is_open()) << log_path;
  std::string record;
  ASSERT_TRUE(static_cast<bool>(std::getline(log, record)));
  EXPECT_NE(record.find("\"req\":\"slow\""), std::string::npos) << record;
  EXPECT_NE(record.find("\"op\":\"sleep\""), std::string::npos) << record;
  std::string second;
  EXPECT_FALSE(static_cast<bool>(std::getline(log, second))) << second;
  std::remove(log_path.c_str());
}

// Batch protocol over the real daemon (DESIGN.md §14): a SIGTERM arriving
// while a batch frame is mid-execution must not truncate it — every
// accepted sub-request completes and the frame's single response line is
// flushed before the process exits 0.
TEST(ServiceE2E, BatchSurvivesSigtermMidExecution) {
  ServeProcess serve({"--workers", "1"});
  std::string frame = R"({"id":"bf","op":"batch","requests":[)";
  for (int i = 0; i < 6; ++i) {
    if (i > 0) frame += ",";
    frame += R"({"id":"e)" + std::to_string(i) + R"(","op":"sleep","ms":40})";
  }
  frame += "]}";
  serve.Send(frame);
  // Give the worker time to start executing, then drain mid-batch.
  usleep(80 * 1000);
  serve.Signal(SIGTERM);
  serve.CloseStdin();

  const std::string line = serve.ReadLine();
  ASSERT_FALSE(line.empty()) << "batch response lost on drain";
  const svc::JsonValue parsed = svc::ParseJson(line);
  EXPECT_TRUE(parsed.Find("ok")->AsBool("ok")) << line;
  EXPECT_EQ(parsed.Find("id")->AsString("id"), "bf");
  EXPECT_EQ(parsed.Find("count")->AsUint("count"), 6u);
  EXPECT_EQ(parsed.Find("failed")->AsUint("failed"), 0u);
  EXPECT_EQ(parsed.Find("responses")->AsArray("responses").size(), 6u);
  EXPECT_EQ(serve.Wait(), 0);
}

TEST(ServiceE2E, BatchErrorEntriesCarryFrameIdAndIndex) {
  ServeProcess serve({"--workers", "2"});
  serve.Send(
      R"({"id":"mix","op":"batch","requests":[)"
      R"({"id":"g1","op":"ping"},)"
      R"({"id":"b1","op":"ping","nope":true},)"
      R"({"id":"g2","op":"schedule","topology":{"kind":"mixed"},"apps":4}]})");
  serve.CloseStdin();
  const std::string line = serve.ReadLine();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(serve.Wait(), 0);
  const svc::JsonValue parsed = svc::ParseJson(line);
  ASSERT_TRUE(parsed.Find("ok")->AsBool("ok")) << line;
  EXPECT_EQ(parsed.Find("failed")->AsUint("failed"), 1u);
  const auto& responses = parsed.Find("responses")->AsArray("responses");
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].Find("ok")->AsBool("ok"));
  EXPECT_FALSE(responses[1].Find("ok")->AsBool("ok"));
  EXPECT_EQ(responses[1].Find("id")->AsString("id"), "b1");
  EXPECT_EQ(responses[1].Find("batch")->AsString("batch"), "mix");
  EXPECT_EQ(responses[1].Find("index")->AsUint("index"), 1u);
  EXPECT_TRUE(responses[2].Find("ok")->AsBool("ok"));
  // The good schedule sub-response matches the one-shot CLI byte-for-byte
  // even when it rode through a batch frame.
  EXPECT_EQ(responses[2].Find("text")->AsString("text"),
            RunCli("schedule --kind mixed --apps 4"));
}

// Fleet acceptance (DESIGN.md §14): three TCP daemons behind `commsched
// route`. Responses must be byte-identical to the one-shot CLI, and the
// shards' model caches must stay disjoint (each topology solved on exactly
// one daemon).
TEST(ServiceE2E, ThreeShardFleetRoutesAndKeepsCachesDisjoint) {
  std::vector<std::unique_ptr<ServeProcess>> daemons;
  std::vector<int> ports;
  std::string fleet;
  for (int i = 0; i < 3; ++i) {
    daemons.push_back(
        std::make_unique<ServeProcess>(std::vector<std::string>{"--listen", "0", "--workers", "2"}));
    const int port = AnnouncedPort(*daemons.back());
    ASSERT_GT(port, 0);
    ports.push_back(port);
    if (!fleet.empty()) fleet += ",";
    fleet += "127.0.0.1:" + std::to_string(port);
  }
  ServeProcess router({"--fleet", fleet}, "route");

  const char* kTopologies[] = {"mixed", "rings", "random"};
  for (int round = 0; round < 2; ++round) {
    for (int t = 0; t < 3; ++t) {
      const std::string id = "r" + std::to_string(round) + "t" + std::to_string(t);
      std::string topology = std::string(R"({"kind":")") + kTopologies[t] + R"("})";
      if (std::string(kTopologies[t]) == "random") {
        topology = R"({"kind":"random","switches":12})";
      }
      router.Send(R"({"id":")" + id + R"(","op":"schedule","topology":)" + topology +
                  R"(,"apps":4})");
    }
  }
  router.Send("{not json at all");  // forwarded: the daemon renders the error
  router.CloseStdin();

  std::vector<std::string> lines;
  for (int i = 0; i < 7; ++i) {
    lines.push_back(router.ReadLine());
    ASSERT_FALSE(lines.back().empty()) << "router lost response " << i;
  }
  EXPECT_EQ(router.Wait(), 0);

  // Responses come back in request order; the repeated round must render
  // byte-identical lines and the schedule text matches the one-shot CLI.
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(svc::ParseJson(lines[static_cast<std::size_t>(t)])
                  .Find("text")->AsString("text"),
              svc::ParseJson(lines[static_cast<std::size_t>(t + 3)])
                  .Find("text")->AsString("text"));
  }
  EXPECT_EQ(svc::ParseJson(lines[0]).Find("text")->AsString("text"),
            RunCli("schedule --kind mixed --apps 4"));
  EXPECT_FALSE(svc::ParseJson(lines[6]).Find("ok")->AsBool("ok"));

  // Disjointness: 3 topologies, 3 shards, each daemon's miss count equals
  // the distinct topologies it owns and the misses sum to exactly 3.
  std::size_t total_misses = 0;
  std::size_t total_hits = 0;
  for (const int port : ports) {
    const std::string stats = TcpJsonLine(port, R"({"id":"st","op":"stats"})");
    const svc::JsonValue parsed = svc::ParseJson(stats);
    const svc::JsonValue* cache = parsed.Find("topology_cache");
    ASSERT_NE(cache, nullptr) << stats;
    total_misses += cache->Find("misses")->AsUint("misses");
    total_hits += cache->Find("hits")->AsUint("hits");
  }
  EXPECT_EQ(total_misses, 3u);  // one solve per topology across the fleet
  EXPECT_EQ(total_hits, 3u);    // the repeat round hit its owner's cache

  for (auto& daemon : daemons) {
    daemon->Signal(SIGTERM);
  }
}

}  // namespace
}  // namespace commsched
