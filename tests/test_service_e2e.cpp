// End-to-end acceptance test for `commsched_cli serve` (DESIGN.md §10):
// spawns the real binary, drives the JSONL protocol over its stdin/stdout,
// and checks the tentpole guarantees —
//   * a served request's `text` is byte-identical to the one-shot CLI run
//     with the same knobs;
//   * a 64-request concurrent mixed burst gets exactly one response per
//     request and the topology cache converges to hits;
//   * SIGTERM drains cleanly: every admitted request is answered, the
//     process exits 0, no response line is lost or truncated.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "core/commsched.h"

namespace commsched {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "commsched_e2e_" + name;
}

/// Runs the one-shot CLI, returning its stdout. Asserts exit code 0.
std::string RunCli(const std::string& args) {
  const std::string out_path = TempPath("oneshot.out");
  const std::string command = std::string(COMMSCHED_CLI_PATH) + " " + args + " > " + out_path;
  EXPECT_EQ(std::system(command.c_str()), 0) << command;
  std::ifstream in(out_path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// A `commsched_cli serve` child process with pipes on stdin/stdout.
class ServeProcess {
 public:
  explicit ServeProcess(const std::vector<std::string>& extra_args = {}) {
    int to_child[2];
    int from_child[2];
    CS_CHECK(pipe(to_child) == 0 && pipe(from_child) == 0, "pipe failed");
    pid_ = fork();
    CS_CHECK(pid_ >= 0, "fork failed");
    if (pid_ == 0) {
      dup2(to_child[0], STDIN_FILENO);
      dup2(from_child[1], STDOUT_FILENO);
      close(to_child[0]);
      close(to_child[1]);
      close(from_child[0]);
      close(from_child[1]);
      std::vector<std::string> args = {COMMSCHED_CLI_PATH, "serve"};
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      execv(argv[0], argv.data());
      _exit(127);  // exec failed
    }
    close(to_child[0]);
    close(from_child[1]);
    stdin_fd_ = to_child[1];
    stdout_fd_ = from_child[0];
  }

  ~ServeProcess() {
    if (stdin_fd_ >= 0) close(stdin_fd_);
    if (stdout_fd_ >= 0) close(stdout_fd_);
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
    }
  }

  void Send(const std::string& line) {
    const std::string framed = line + "\n";
    ASSERT_EQ(write(stdin_fd_, framed.data(), framed.size()),
              static_cast<ssize_t>(framed.size()));
  }

  /// Blocking read of the next response line ("" on EOF).
  std::string ReadLine() {
    std::string line;
    char c = 0;
    while (true) {
      const ssize_t got = read(stdout_fd_, &c, 1);
      if (got != 1) return line;  // EOF mid-line: caller sees the fragment
      if (c == '\n') return line;
      line.push_back(c);
    }
  }

  void CloseStdin() {
    close(stdin_fd_);
    stdin_fd_ = -1;
  }

  void Signal(int signo) { kill(pid_, signo); }

  /// Waits for exit and returns the exit code (-1 on abnormal death).
  int Wait() {
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

 private:
  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
};

std::map<std::string, svc::JsonValue> ReadResponses(ServeProcess& serve, std::size_t count) {
  std::map<std::string, svc::JsonValue> by_id;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string line = serve.ReadLine();
    if (line.empty()) break;  // EOF: the caller's count assertion will fire
    svc::JsonValue parsed = svc::ParseJson(line);
    const svc::JsonValue* id = parsed.Find("id");
    if (id == nullptr) {
      ADD_FAILURE() << "response without id: " << line;
      continue;
    }
    by_id.emplace(id->AsString("id"), std::move(parsed));
  }
  return by_id;
}

TEST(ServiceE2E, ServedTextMatchesOneShotCliByteForByte) {
  ServeProcess serve({"--workers", "2"});
  serve.Send(R"({"id":"sched","op":"schedule","topology":{"kind":"mixed"},"apps":4})");
  serve.Send(
      R"({"id":"sched24","op":"schedule","topology":{"kind":"rings"},"apps":4,"algo":"sd"})");
  serve.Send(
      R"({"id":"sim","op":"simulate","topology":{"kind":"random","switches":12},"apps":4,)"
      R"("mapping":"blocked","points":2,"max_rate":0.4,"warmup":500,"measure":1500})");
  serve.CloseStdin();
  const auto responses = ReadResponses(serve, 3);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(serve.Wait(), 0);

  EXPECT_EQ(responses.at("sched").Find("text")->AsString("text"),
            RunCli("schedule --kind mixed --apps 4"));
  EXPECT_EQ(responses.at("sched24").Find("text")->AsString("text"),
            RunCli("schedule --kind rings --apps 4 --algo sd"));
  EXPECT_EQ(responses.at("sim").Find("text")->AsString("text"),
            RunCli("simulate --kind random --switches 12 --apps 4 --mapping blocked "
                   "--points 2 --max-rate 0.4 --warmup 500 --measure 1500"));
}

TEST(ServiceE2E, ConcurrentMixedBurstAnswersAllAndHitsCache) {
  ServeProcess serve({"--workers", "4", "--queue", "16"});
  std::set<std::string> expected_ids;
  for (int i = 0; i < 64; ++i) {
    const std::string id = "b" + std::to_string(i);
    expected_ids.insert(id);
    switch (i % 4) {
      case 0:
        serve.Send(R"({"id":")" + id +
                   R"(","op":"schedule","topology":{"kind":"mixed"},"apps":4})");
        break;
      case 1:
        serve.Send(R"({"id":")" + id +
                   R"(","op":"schedule","topology":{"kind":"random","switches":12},)"
                   R"("apps":4,"algo":"random","samples":200})");
        break;
      case 2:
        serve.Send(R"({"id":")" + id +
                   R"(","op":"quality","topology":{"kind":"random","switches":12},)"
                   R"("partition":[0,0,0,1,1,1,2,2,2,3,3,3]})");
        break;
      default:
        serve.Send(R"({"id":")" + id + R"(","op":"ping"})");
        break;
    }
  }
  // stats goes last: by the time it is served, earlier duplicates resolved.
  serve.Send(R"({"id":"stats","op":"stats"})");
  serve.CloseStdin();
  const auto responses = ReadResponses(serve, 65);
  ASSERT_EQ(responses.size(), 65u);
  EXPECT_EQ(serve.Wait(), 0);

  for (const std::string& id : expected_ids) {
    ASSERT_TRUE(responses.count(id)) << "lost response for " << id;
    EXPECT_TRUE(responses.at(id).Find("ok")->AsBool("ok")) << id;
  }
  // 64 requests over 2 distinct topologies: the model cache must be hitting.
  const svc::JsonValue& stats = responses.at("stats");
  const svc::JsonValue* model_cache = stats.Find("topology_cache");
  ASSERT_NE(model_cache, nullptr);
  EXPECT_EQ(model_cache->Find("misses")->AsUint("misses"), 2u);
  EXPECT_GT(model_cache->Find("hits")->AsUint("hits"), 0u);
  const svc::JsonValue* result_cache = stats.Find("result_cache");
  ASSERT_NE(result_cache, nullptr);
  EXPECT_GT(result_cache->Find("hits")->AsUint("hits"), 0u);
}

TEST(ServiceE2E, SigtermDrainsWithoutLosingResponses) {
  ServeProcess serve({"--workers", "2"});
  std::set<std::string> expected_ids;
  for (int i = 0; i < 12; ++i) {
    const std::string id = "t" + std::to_string(i);
    expected_ids.insert(id);
    if (i % 3 == 0) {
      serve.Send(R"({"id":")" + id + R"(","op":"sleep","ms":30})");
    } else {
      serve.Send(R"({"id":")" + id +
                 R"(","op":"schedule","topology":{"kind":"mixed"},"apps":4})");
    }
  }
  // Wait until every request has been admitted AND answered, then SIGTERM:
  // the drain contract says the process must still exit 0 with nothing lost.
  const auto responses = ReadResponses(serve, 12);
  ASSERT_EQ(responses.size(), 12u);
  for (const std::string& id : expected_ids) {
    ASSERT_TRUE(responses.count(id)) << "lost response for " << id;
    EXPECT_TRUE(responses.at(id).Find("ok")->AsBool("ok")) << id;
  }
  serve.Signal(SIGTERM);
  EXPECT_EQ(serve.Wait(), 0);
  // After exit, stdout holds no partial line (drain flushed everything).
  EXPECT_EQ(serve.ReadLine(), "");
}

TEST(ServiceE2E, MalformedAndExpiredRequestsGetErrorResponses) {
  ServeProcess serve({"--workers", "1", "--deadline-ms", "60000"});
  serve.Send("{broken json");
  serve.Send(R"({"id":"bad","op":"warp"})");
  serve.Send(R"({"id":"ok","op":"ping"})");
  serve.CloseStdin();
  std::vector<std::string> lines;
  for (int i = 0; i < 3; ++i) lines.push_back(serve.ReadLine());
  EXPECT_EQ(serve.Wait(), 0);
  std::size_t errors = 0;
  std::size_t oks = 0;
  for (const std::string& line : lines) {
    ASSERT_FALSE(line.empty());
    const svc::JsonValue parsed = svc::ParseJson(line);
    if (parsed.Find("ok")->AsBool("ok")) {
      ++oks;
    } else {
      ++errors;
      EXPECT_NE(parsed.Find("error"), nullptr) << line;
    }
  }
  EXPECT_EQ(oks, 1u);
  EXPECT_EQ(errors, 2u);
}

}  // namespace
}  // namespace commsched
