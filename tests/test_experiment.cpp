// Integration test: the paper's end-to-end pipeline on a small scale.
#include "core/experiment.h"

#include <gtest/gtest.h>

#include "topology/generator.h"
#include "topology/library.h"

namespace commsched::core {
namespace {

ExperimentOptions FastOptions() {
  ExperimentOptions options;
  options.random_mappings = 2;
  options.sweep.points = 4;
  options.sweep.min_rate = 0.05;
  options.sweep.max_rate = 0.8;
  options.sweep.config.warmup_cycles = 1000;
  options.sweep.config.measure_cycles = 3000;
  options.tabu.seeds = 5;
  return options;
}

TEST(Experiment, CoefficientOnlyModeSkipsSimulation) {
  const topo::SwitchGraph g = topo::GenerateIrregularTopology({16, 4, 3, 1, 1000});
  ExperimentOptions options = FastOptions();
  options.run_simulation = false;
  const ExperimentResult result = RunPaperExperiment(g, options);
  ASSERT_EQ(result.mappings.size(), 3u);
  EXPECT_EQ(result.mappings[0].label, "OP");
  EXPECT_EQ(result.mappings[1].label, "R1");
  EXPECT_TRUE(result.mappings[0].sweep.points.empty());
  // OP's clustering coefficient beats every random mapping's.
  for (std::size_t k = 1; k < result.mappings.size(); ++k) {
    EXPECT_GE(result.mappings[0].cc, result.mappings[k].cc);
  }
}

TEST(Experiment, ScheduledMappingWinsOnThroughput) {
  // The paper's headline claim, miniaturized: OP throughput exceeds the
  // best random mapping's on the clustered 24-switch topology.
  const topo::SwitchGraph g = topo::MakeFourRingsOfSix();
  const ExperimentResult result = RunPaperExperiment(g, FastOptions());
  EXPECT_GT(result.Scheduled().Throughput(), 0.0);
  EXPECT_GT(result.ThroughputImprovement(), 1.0);
}

TEST(Experiment, SwitchCountMustDivide) {
  const topo::SwitchGraph g = topo::GenerateIrregularTopology({18, 4, 3, 1, 1000});
  ExperimentOptions options = FastOptions();
  options.applications = 4;  // 18 % 4 != 0
  EXPECT_THROW((void)RunPaperExperiment(g, options), commsched::ContractError);
}

TEST(Experiment, DeterministicAcrossRuns) {
  const topo::SwitchGraph g = topo::GenerateIrregularTopology({16, 4, 3, 5, 1000});
  ExperimentOptions options = FastOptions();
  options.run_simulation = false;
  const ExperimentResult a = RunPaperExperiment(g, options);
  const ExperimentResult b = RunPaperExperiment(g, options);
  ASSERT_EQ(a.mappings.size(), b.mappings.size());
  for (std::size_t k = 0; k < a.mappings.size(); ++k) {
    EXPECT_EQ(a.mappings[k].partition, b.mappings[k].partition);
    EXPECT_DOUBLE_EQ(a.mappings[k].cc, b.mappings[k].cc);
  }
}

}  // namespace
}  // namespace commsched::core
