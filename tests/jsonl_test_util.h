// Minimal flat-JSON-object parsing for validating obs trace / metrics output
// in tests. Handles exactly the shape the obs layer emits: one object per
// line, string/number/bool/null values, at most one level of nested objects
// (the --metrics dump nests {"counters":{...},"timers":{...}}).
//
// Test-only: intentionally not a general JSON parser.
#pragma once

#include <cctype>
#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace commsched::testutil {

/// Parses one JSON object into key -> raw value text (nested objects are
/// returned as their raw "{...}" text, strings keep their quotes). Returns
/// std::nullopt on malformed input.
inline std::optional<std::map<std::string, std::string>> ParseJsonObject(
    const std::string& text) {
  std::map<std::string, std::string> fields;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '{') return std::nullopt;
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == '}') return fields;  // empty object
  for (;;) {
    skip_ws();
    // Key: a quoted string without escapes (obs keys are identifiers).
    if (i >= text.size() || text[i] != '"') return std::nullopt;
    const std::size_t key_start = ++i;
    while (i < text.size() && text[i] != '"') ++i;
    if (i >= text.size()) return std::nullopt;
    const std::string key = text.substr(key_start, i - key_start);
    ++i;
    skip_ws();
    if (i >= text.size() || text[i] != ':') return std::nullopt;
    ++i;
    skip_ws();
    // Value: scan to the next top-level ',' or '}' respecting strings and
    // nested braces.
    const std::size_t value_start = i;
    int depth = 0;
    bool in_string = false;
    for (; i < text.size(); ++i) {
      const char c = text[i];
      if (in_string) {
        if (c == '\\') {
          ++i;  // skip the escaped character
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0) break;
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
    }
    if (i >= text.size() || depth != 0 || in_string) return std::nullopt;
    std::string value = text.substr(value_start, i - value_start);
    while (!value.empty() &&
           std::isspace(static_cast<unsigned char>(value.back()))) {
      value.pop_back();
    }
    if (value.empty()) return std::nullopt;
    fields[key] = value;
    if (text[i] == '}') {
      // Only trailing whitespace may follow the closing brace.
      ++i;
      skip_ws();
      if (i != text.size()) return std::nullopt;
      return fields;
    }
    ++i;  // consume ','
  }
}

/// Raw value text of `key`, or "" when absent.
inline std::string JsonRaw(const std::map<std::string, std::string>& fields,
                           const std::string& key) {
  const auto it = fields.find(key);
  return it == fields.end() ? std::string() : it->second;
}

/// String value without its quotes ("" when absent or not a string).
inline std::string JsonString(const std::map<std::string, std::string>& fields,
                              const std::string& key) {
  const std::string raw = JsonRaw(fields, key);
  if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"') return "";
  return raw.substr(1, raw.size() - 2);
}

/// Unsigned value, or `fallback` when absent/non-numeric.
inline std::uint64_t JsonUint(const std::map<std::string, std::string>& fields,
                              const std::string& key, std::uint64_t fallback = 0) {
  const std::string raw = JsonRaw(fields, key);
  if (raw.empty() || raw.find_first_not_of("0123456789") != std::string::npos) {
    return fallback;
  }
  return std::stoull(raw);
}

}  // namespace commsched::testutil
