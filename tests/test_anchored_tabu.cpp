// Migration-aware (anchored) Tabu search and link-failure re-scheduling.
#include <gtest/gtest.h>

#include "distance/distance_table.h"
#include "routing/updown.h"
#include "sched/tabu.h"
#include "topology/generator.h"
#include "topology/library.h"

namespace commsched::sched {
namespace {

DistanceTable PaperTable(const topo::SwitchGraph& g) {
  const route::UpDownRouting routing(g);
  return DistanceTable::Build(routing);
}

TEST(AnchoredTabu, ZeroPenaltyMatchesPlainOptimum) {
  const topo::SwitchGraph g = topo::GenerateIrregularTopology({16, 4, 3, 1, 1000});
  const DistanceTable t = PaperTable(g);
  const SearchResult plain = TabuSearch(t, {4, 4, 4, 4});
  const qual::Partition anchor = qual::Partition::Blocked({4, 4, 4, 4});
  TabuOptions options;
  options.anchor = &anchor;
  options.migration_penalty = 0.0;
  const SearchResult anchored = TabuSearch(t, {4, 4, 4, 4}, options);
  // Warm start can only help: the anchored run finds the same optimum here.
  EXPECT_LE(anchored.best_fg, plain.best_fg + 1e-9);
}

TEST(AnchoredTabu, InfinitePenaltyStaysAtAnchor) {
  const topo::SwitchGraph g = topo::GenerateIrregularTopology({16, 4, 3, 2, 1000});
  const DistanceTable t = PaperTable(g);
  const qual::Partition anchor = qual::Partition::Blocked({4, 4, 4, 4});
  TabuOptions options;
  options.anchor = &anchor;
  options.migration_penalty = 1e9;
  const SearchResult result = TabuSearch(t, {4, 4, 4, 4}, options);
  EXPECT_EQ(result.moved_from_anchor, 0u);
  EXPECT_TRUE(result.best == anchor);
}

TEST(AnchoredTabu, PenaltySweepIsMonotoneInMoves) {
  const topo::SwitchGraph g = topo::GenerateIrregularTopology({16, 4, 3, 3, 1000});
  const DistanceTable t = PaperTable(g);
  Rng rng(42);
  const qual::Partition anchor = qual::Partition::Random({4, 4, 4, 4}, rng);
  std::size_t previous_moves = 16;
  double previous_fg = 0.0;
  bool first = true;
  for (double penalty : {0.0, 0.05, 0.2, 1.0, 100.0}) {
    TabuOptions options;
    options.anchor = &anchor;
    options.migration_penalty = penalty;
    options.max_iterations_per_seed = 60;
    const SearchResult result = TabuSearch(t, {4, 4, 4, 4}, options);
    if (!first) {
      // Higher penalty -> fewer (or equal) switches moved, at worse (or
      // equal) F_G.
      EXPECT_LE(result.moved_from_anchor, previous_moves) << "penalty " << penalty;
      EXPECT_GE(result.best_fg, previous_fg - 1e-9) << "penalty " << penalty;
    }
    previous_moves = result.moved_from_anchor;
    previous_fg = result.best_fg;
    first = false;
  }
  EXPECT_EQ(previous_moves, 0u);  // the 100.0 run must not move anything
}

TEST(AnchoredTabu, AnchorSizeMismatchRejected) {
  const topo::SwitchGraph g = topo::GenerateIrregularTopology({16, 4, 3, 1, 1000});
  const DistanceTable t = PaperTable(g);
  const qual::Partition wrong = qual::Partition::Blocked({8, 4, 4});
  TabuOptions options;
  options.anchor = &wrong;
  EXPECT_THROW((void)TabuSearch(t, {4, 4, 4, 4}, options), commsched::ContractError);
}

TEST(LinkFailure, WithoutLinkRemovesExactlyOne) {
  const topo::SwitchGraph g = topo::MakeFourRingsOfSix();
  const auto link = g.FindLink(0, 1);
  ASSERT_TRUE(link.has_value());
  const topo::SwitchGraph degraded = g.WithoutLink(*link);
  EXPECT_EQ(degraded.link_count(), g.link_count() - 1);
  EXPECT_FALSE(degraded.HasLink(0, 1));
  EXPECT_TRUE(degraded.HasLink(1, 2));
  EXPECT_TRUE(degraded.IsConnected());  // a ring survives one cut
}

TEST(LinkFailure, ReschedulingAfterFailureImprovesOnStaleMapping) {
  // Cut a ring link of the designed 24-switch network: the affected ring is
  // now a path and its equivalent distances grow. Re-scheduling with a
  // moderate migration penalty should improve F_G over the stale mapping
  // while moving only a few switches.
  const topo::SwitchGraph g = topo::MakeFourRingsOfSix();
  const DistanceTable before = PaperTable(g);
  TabuOptions base;
  base.max_iterations_per_seed = 60;
  const SearchResult original = TabuSearch(before, {6, 6, 6, 6}, base);

  const topo::SwitchGraph degraded = g.WithoutLink(*g.FindLink(0, 1));
  ASSERT_TRUE(degraded.IsConnected());
  const DistanceTable after = PaperTable(degraded);

  const double stale_fg = qual::GlobalSimilarity(after, original.best);
  TabuOptions anchored = base;
  anchored.anchor = &original.best;
  anchored.migration_penalty = 0.02;
  const SearchResult rescheduled = TabuSearch(after, {6, 6, 6, 6}, anchored);
  EXPECT_LE(rescheduled.best_fg, stale_fg + 1e-9);
  EXPECT_LE(rescheduled.moved_from_anchor, 24u);
}

}  // namespace
}  // namespace commsched::sched
