#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace commsched {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // Pool remains usable after an exception.
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, DefaultsToHardwareThreads) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  ParallelFor(pool, visits.size(), [&](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) {
    EXPECT_EQ(v.load(), 1);
  }
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  ParallelFor(pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, SingleIteration) {
  std::atomic<int> count{0};
  ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, ConvenienceOverloadComputesCorrectSum) {
  std::vector<long> squares(500);
  ParallelFor(squares.size(), [&](std::size_t i) { squares[i] = static_cast<long>(i * i); });
  long sum = std::accumulate(squares.begin(), squares.end(), 0L);
  long expected = 0;
  for (long i = 0; i < 500; ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
}

TEST(ParallelFor, ExceptionInBodyPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(pool, 100,
                           [](std::size_t i) {
                             if (i == 57) throw std::logic_error("bad index");
                           }),
               std::logic_error);
}

TEST(ParallelFor, MoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  ParallelFor(pool, 10000, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 10000L * 9999L / 2);
}

}  // namespace
}  // namespace commsched
