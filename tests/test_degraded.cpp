// DegradedView / Reconfiguration / DegradedRouting (ISSUE 3 tentpole part 2)
// plus the disconnected-graph satellite: partitions produced by a fault plan
// must take the graceful eviction path, never UpDownRouting's typed throw.
#include "faults/degraded.h"

#include <gtest/gtest.h>

#include "distance/distance_table.h"
#include "faults/fault_plan.h"
#include "topology/library.h"

namespace commsched::faults {
namespace {

// Path 0-1-2-3 with a chord 0-2: rich enough for evictions and reroutes.
topo::SwitchGraph Diamond() {
  topo::SwitchGraph g(4, 1);
  g.AddLink(0, 1);  // link 0
  g.AddLink(1, 2);  // link 1
  g.AddLink(2, 3);  // link 2
  g.AddLink(0, 2);  // link 3
  return g;
}

TEST(DegradedView, MasksLinksAndSwitches) {
  const topo::SwitchGraph g = Diamond();
  DegradedView view(g);
  for (topo::LinkId l = 0; l < g.link_count(); ++l) EXPECT_TRUE(view.LinkAlive(l));

  view.FailLink(1, 2);
  EXPECT_FALSE(view.LinkAlive(1));
  EXPECT_TRUE(view.SwitchAlive(1));
  view.RestoreLink(1, 2);
  EXPECT_TRUE(view.LinkAlive(1));

  // A dead switch kills every incident link even if the links themselves
  // never failed.
  view.FailSwitch(2);
  EXPECT_FALSE(view.SwitchAlive(2));
  EXPECT_FALSE(view.LinkAlive(1));
  EXPECT_FALSE(view.LinkAlive(2));
  EXPECT_FALSE(view.LinkAlive(3));
  EXPECT_TRUE(view.LinkAlive(0));
  view.RestoreSwitch(2);
  EXPECT_TRUE(view.LinkAlive(1));
}

TEST(DegradedView, ApplyRejectsUnknownComponents) {
  const topo::SwitchGraph g = Diamond();
  DegradedView view(g);
  EXPECT_THROW(view.FailLink(1, 3), ConfigError);  // no such link
  EXPECT_THROW(view.FailSwitch(9), ConfigError);
  EXPECT_THROW(view.Apply({0, FaultKind::kSwitchUp, 0, 0, 9}), ConfigError);
}

TEST(DegradedView, LargestAliveComponentBreaksTiesLow) {
  // Two 2-switch components after cutting the middle: {0,1} wins over {2,3}.
  topo::SwitchGraph g(4, 1);
  g.AddLink(0, 1);
  g.AddLink(1, 2);
  g.AddLink(2, 3);
  DegradedView view(g);
  view.FailLink(1, 2);
  EXPECT_EQ(view.LargestAliveComponent(), (std::vector<topo::SwitchId>{0, 1}));
}

TEST(DegradedView, ReconfigureOnHealthyGraphIsIdentityShaped) {
  const topo::SwitchGraph g = Diamond();
  const Reconfiguration r = DegradedView(g).Reconfigure();
  EXPECT_EQ(r.graph.switch_count(), 4u);
  EXPECT_EQ(r.graph.link_count(), 4u);
  EXPECT_TRUE(r.dead.empty());
  EXPECT_TRUE(r.evicted.empty());
  for (topo::SwitchId s = 0; s < 4; ++s) {
    EXPECT_TRUE(r.Covers(s));
    EXPECT_EQ(r.to_base[*r.to_compact[s]], s);
  }
}

TEST(DegradedView, PartitionEvictsOrThrowsDependingOnMode) {
  // Killing switch 2 on the path 0-1-2-3 (no chord) strands switch 3.
  topo::SwitchGraph g(4, 1);
  g.AddLink(0, 1);
  g.AddLink(1, 2);
  g.AddLink(2, 3);
  DegradedView view(g);
  view.FailSwitch(2);

  const Reconfiguration graceful = view.Reconfigure(/*allow_partition=*/true);
  EXPECT_EQ(graceful.graph.switch_count(), 2u);  // {0, 1}
  EXPECT_EQ(graceful.dead, (std::vector<topo::SwitchId>{2}));
  EXPECT_EQ(graceful.evicted, (std::vector<topo::SwitchId>{3}));
  EXPECT_FALSE(graceful.Covers(3));

  try {
    (void)view.Reconfigure(/*allow_partition=*/false);
    FAIL() << "expected PartitionedNetworkError";
  } catch (const PartitionedNetworkError& e) {
    EXPECT_EQ(e.evicted_switches(), (std::vector<topo::SwitchId>{3}));
    EXPECT_NE(std::string(e.what()).find("partitioned"), std::string::npos);
  }
  // And the typed error is still a ConfigError for generic handlers.
  EXPECT_THROW((void)view.Reconfigure(false), ConfigError);
}

TEST(DegradedView, AllSwitchesDeadIsAnError) {
  const topo::SwitchGraph g = Diamond();
  DegradedView view(g);
  for (topo::SwitchId s = 0; s < 4; ++s) view.FailSwitch(s);
  EXPECT_THROW((void)view.Reconfigure(), ConfigError);
}

TEST(DegradedRouting, AnswersInBaseIdsAndFlagsUnreachable) {
  const topo::SwitchGraph g = Diamond();
  DegradedView view(g);
  view.FailLink(1, 2);  // 1 now only reaches the rest via 0
  DegradedRouting routing(g, view.Reconfigure());

  EXPECT_EQ(&routing.graph(), &g);
  for (topo::SwitchId s = 0; s < 4; ++s) EXPECT_TRUE(routing.Covers(s));

  // 1 -> 3 must run 1-0-2-3 (the only surviving route).
  EXPECT_EQ(routing.MinimalDistance(1, 3), 3u);
  const auto hops = routing.NextHops(1, 3, route::Phase::kUp);
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0].link, 0u);   // base link id of 0--1
  EXPECT_EQ(hops[0].next, 0u);   // base switch id
  const auto links = routing.LinksOnMinimalPaths(1, 3);
  EXPECT_EQ(links, (std::vector<topo::LinkId>{0, 2, 3}));  // base link ids

  // NextHops stays sorted by base link id everywhere (Routing contract).
  for (topo::SwitchId s = 0; s < 4; ++s) {
    for (topo::SwitchId t = 0; t < 4; ++t) {
      for (const route::Phase phase : {route::Phase::kUp, route::Phase::kDown}) {
        const auto candidates = routing.NextHops(s, t, phase);
        for (std::size_t k = 1; k < candidates.size(); ++k) {
          EXPECT_LT(candidates[k - 1].link, candidates[k].link);
        }
      }
    }
  }
}

TEST(DegradedRouting, UncoveredSwitchesAreUnreachableNotFatal) {
  topo::SwitchGraph g(4, 1);
  g.AddLink(0, 1);
  g.AddLink(1, 2);
  g.AddLink(2, 3);
  DegradedView view(g);
  view.FailSwitch(2);  // evicts 3
  DegradedRouting routing(g, view.Reconfigure());

  EXPECT_FALSE(routing.Covers(3));
  EXPECT_EQ(routing.MinimalDistance(0, 3), SIZE_MAX);
  EXPECT_TRUE(routing.NextHops(0, 3, route::Phase::kUp).empty());
  EXPECT_TRUE(routing.LinksOnMinimalPaths(0, 3).empty());
}

TEST(DegradedRouting, CompactRoutingFeedsDistanceTable) {
  const topo::SwitchGraph g = topo::MakeFourRingsOfSix();
  DegradedView view(g);
  view.FailSwitch(5);
  DegradedRouting routing(g, view.Reconfigure());
  const dist::DistanceTable table = dist::DistanceTable::Build(routing.compact_routing());
  EXPECT_EQ(table.size(), routing.reconfig().graph.switch_count());
  const std::size_t survivors = routing.reconfig().graph.switch_count();
  for (std::size_t i = 0; i < survivors; ++i) {
    for (std::size_t j = i + 1; j < survivors; ++j) {
      EXPECT_GT(table(i, j), 0.0);
    }
  }
}

TEST(DegradedRouting, FaultPlanPartitionTakesGracefulPathNotUpDownThrow) {
  // The disconnected-graph satellite, end to end: a plan that partitions
  // the network must flow through eviction — DisconnectedGraphError (which
  // UpDownRouting throws on disconnected input) must never surface, because
  // reconfiguration only ever builds routing on a connected component.
  topo::SwitchGraph g(5, 1);
  g.AddLink(0, 1);
  g.AddLink(1, 2);
  g.AddLink(2, 3);
  g.AddLink(3, 4);
  const FaultPlan plan = FaultPlan::FromJson(
      R"({"events": [{"at": 100, "kind": "link_down", "a": 2, "b": 3}]})");
  plan.ValidateFor(g);

  DegradedView view(g);
  for (const FaultEvent& event : plan.events()) view.Apply(event);
  std::unique_ptr<DegradedRouting> routing;
  EXPECT_NO_THROW(routing = std::make_unique<DegradedRouting>(g, view.Reconfigure()));
  EXPECT_EQ(routing->reconfig().evicted, (std::vector<topo::SwitchId>{3, 4}));
  EXPECT_TRUE(routing->Covers(0));
  EXPECT_FALSE(routing->Covers(4));
}

}  // namespace
}  // namespace commsched::faults
