// Unit tests for the scheduling service: JSON protocol parsing, the
// memoizing LRU caches, execution helpers shared with the CLI, the
// SchedulingService brain, and the Daemon's admission/deadline/drain
// machinery (DESIGN.md §10).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/commsched.h"

namespace commsched {
namespace {

using svc::JsonValue;

// ---------------------------------------------------------------- JSON --

TEST(ServiceJson, ParsesNestedDocument) {
  const JsonValue root = svc::ParseJson(
      R"({"s":"a\"b\nA","n":-2.5,"t":true,"f":false,"z":null,)"
      R"("arr":[1,2,3],"obj":{"k":7}})");
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.Find("s")->AsString("s"), "a\"b\nA");
  EXPECT_DOUBLE_EQ(root.Find("n")->AsDouble("n"), -2.5);
  EXPECT_TRUE(root.Find("t")->AsBool("t"));
  EXPECT_FALSE(root.Find("f")->AsBool("f"));
  EXPECT_TRUE(root.Find("z")->is_null());
  EXPECT_EQ(root.Find("arr")->AsArray("arr").size(), 3u);
  EXPECT_EQ(root.Find("obj")->Find("k")->AsUint("k"), 7u);
  EXPECT_EQ(root.Find("missing"), nullptr);
}

TEST(ServiceJson, RejectsMalformedInput) {
  EXPECT_THROW(svc::ParseJson("{"), ConfigError);
  EXPECT_THROW(svc::ParseJson("{} trailing"), ConfigError);
  EXPECT_THROW(svc::ParseJson("{\"a\":truu}"), ConfigError);
  EXPECT_THROW(svc::ParseJson(""), ConfigError);
  try {
    svc::ParseJson("[1,2,");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos) << e.what();
  }
}

TEST(ServiceJson, UintRejectsNegativeAndFractional) {
  EXPECT_THROW(svc::ParseJson("-3").AsUint("x"), ConfigError);
  EXPECT_THROW(svc::ParseJson("2.5").AsUint("x"), ConfigError);
  EXPECT_THROW(svc::ParseJson("\"7\"").AsUint("x"), ConfigError);
  EXPECT_EQ(svc::ParseJson("12").AsUint("x"), 12u);
}

TEST(ServiceJson, WriterPreservesOrderAndEscapes) {
  svc::JsonObjectWriter writer;
  writer.Field("id", "a\"b");
  writer.Field("ok", true);
  writer.Field("count", static_cast<std::uint64_t>(3));
  writer.Raw("nested", "{\"x\":1}");
  EXPECT_EQ(writer.Finish(), R"({"id":"a\"b","ok":true,"count":3,"nested":{"x":1}})");
  // A writer round-trips through the parser.
  const JsonValue parsed = svc::ParseJson(writer.Finish());
  EXPECT_EQ(parsed.Find("id")->AsString("id"), "a\"b");
}

TEST(ServiceJson, HashMatchesFnv1aTestVectors) {
  // Canonical FNV-1a 64 vectors — the hash must stay stable across releases
  // because cache keys are logged and compared across processes.
  EXPECT_EQ(svc::HashBytes(""), 14695981039346656037ULL);
  EXPECT_EQ(svc::HashBytes("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(svc::HashBytes("updown:maxdegree|x"), svc::HashBytes("updown:maxdegree|y"));
}

// --------------------------------------------------------------- cache --

TEST(ServiceCache, CountsHitsMissesAndEvictsLru) {
  svc::LruCache<int> cache("test_lru", 2);
  auto build = [](int v) { return [v] { return std::make_shared<const int>(v); }; };
  EXPECT_EQ(*cache.GetOrCompute(1, build(10)), 10);
  EXPECT_EQ(*cache.GetOrCompute(2, build(20)), 20);
  EXPECT_EQ(*cache.GetOrCompute(1, build(99)), 10);  // hit: build not called
  EXPECT_EQ(*cache.GetOrCompute(3, build(30)), 30);  // evicts key 2 (LRU)
  EXPECT_EQ(*cache.GetOrCompute(2, build(21)), 21);  // rebuilt after eviction
  const svc::CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.size, 2u);
  EXPECT_EQ(stats.capacity, 2u);
}

TEST(ServiceCache, ConcurrentMissesShareOneBuild) {
  svc::LruCache<int> cache("test_shared", 8);
  std::atomic<int> builds{0};
  std::vector<std::thread> threads;
  std::vector<int> seen(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &builds, &seen, t] {
      seen[static_cast<std::size_t>(t)] = *cache.GetOrCompute(42, [&builds] {
        builds.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return std::make_shared<const int>(7);
      });
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(builds.load(), 1);
  for (const int value : seen) EXPECT_EQ(value, 7);
}

TEST(ServiceCache, FailedBuildPropagatesAndRetries) {
  svc::LruCache<int> cache("test_retry", 4);
  EXPECT_THROW(cache.GetOrCompute(
                   5, []() -> std::shared_ptr<const int> { throw ConfigError("boom"); }),
               ConfigError);
  // The failed entry was dropped; a later request retries and succeeds.
  EXPECT_EQ(*cache.GetOrCompute(5, [] { return std::make_shared<const int>(5); }), 5);
}

// ---------------------------------------------------------------- exec --

TEST(ServiceExec, EvenClusterSizes) {
  EXPECT_EQ(svc::EvenClusterSizes(16, 4), std::vector<std::size_t>(4, 4));
  EXPECT_THROW(svc::EvenClusterSizes(14, 4), ConfigError);
  EXPECT_THROW(svc::EvenClusterSizes(16, 0), ConfigError);
}

TEST(ServiceExec, CanonicalKnobsResolveDefaultsAndIgnoreParallel) {
  svc::SearchKnobs knobs;
  // The tabu iteration default depends on the switch count (paper: 60 on
  // the 24-switch network, 20 on the 16-switch ones).
  EXPECT_EQ(svc::CanonicalSearchKnobs(knobs, 16), "algo=tabu;seeds=10;iters=20;rng=1");
  EXPECT_EQ(svc::CanonicalSearchKnobs(knobs, 24), "algo=tabu;seeds=10;iters=60;rng=1");
  svc::SearchKnobs parallel = knobs;
  parallel.parallel_seeds = true;  // determinism contract: identical results
  EXPECT_EQ(svc::CanonicalSearchKnobs(parallel, 16), svc::CanonicalSearchKnobs(knobs, 16));
  svc::SearchKnobs bad;
  bad.algo = "bogus";
  EXPECT_THROW(svc::CanonicalSearchKnobs(bad, 16), ConfigError);
}

TEST(ServiceExec, RunMappingSearchMatchesDirectTabu) {
  const topo::SwitchGraph graph = topo::MakeMixedDensity16();
  const route::UpDownRouting routing(graph);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);
  const std::vector<std::size_t> sizes(4, 4);

  const sched::SearchResult via_exec = svc::RunMappingSearch(table, sizes, svc::SearchKnobs{});
  sched::TabuOptions options;  // the CLI defaults, spelled out
  options.seeds = 10;
  options.max_iterations_per_seed = 20;
  options.rng_seed = 1;
  const sched::SearchResult direct = sched::TabuSearch(table, sizes, options);
  EXPECT_EQ(via_exec.best.ToString(), direct.best.ToString());
  EXPECT_DOUBLE_EQ(via_exec.best_cc, direct.best_cc);
  EXPECT_EQ(sched::FormatSearchResult(via_exec), sched::FormatSearchResult(direct));
}

// ------------------------------------------------------------ protocol --

TEST(ServiceProtocol, ParsesDefaultsAndFields) {
  const svc::Request defaults = svc::ParseRequest(R"({"op":"schedule"})");
  EXPECT_EQ(defaults.op, svc::RequestOp::kSchedule);
  EXPECT_EQ(defaults.topology.kind, "random");
  EXPECT_EQ(defaults.topology.switches, 16u);
  EXPECT_EQ(defaults.apps, 4u);
  EXPECT_EQ(defaults.algo, "tabu");
  EXPECT_FALSE(defaults.seeds.has_value());
  EXPECT_EQ(defaults.search_seed, 1u);
  EXPECT_EQ(defaults.deadline_ms, 0u);

  const svc::Request full = svc::ParseRequest(
      R"({"id":"r1","op":"simulate","topology":{"kind":"mesh","rows":3,"cols":4},)"
      R"("apps":2,"mapping":"random","mapping_seed":5,"points":3,"min_rate":0.1,)"
      R"("max_rate":0.9,"warmup":100,"measure":400,"vcs":2,"deadline_ms":250})");
  EXPECT_EQ(full.id, "r1");
  EXPECT_EQ(full.topology.kind, "mesh");
  EXPECT_EQ(full.topology.rows, 3u);
  EXPECT_EQ(full.mapping, "random");
  EXPECT_EQ(full.points, 3u);
  EXPECT_DOUBLE_EQ(full.max_rate, 0.9);
  EXPECT_EQ(full.deadline_ms, 250u);
}

TEST(ServiceProtocol, RejectsUnknownKeysAndOps) {
  EXPECT_THROW(svc::ParseRequest(R"({"op":"ping","bogus":1})"), ConfigError);
  EXPECT_THROW(svc::ParseRequest(R"({"op":"launch"})"), ConfigError);
  EXPECT_THROW(svc::ParseRequest(R"({"id":"x"})"), ConfigError);  // no op
  EXPECT_THROW(svc::ParseRequest(R"({"op":"ping","topology":{"sides":3}})"), ConfigError);
}

TEST(ServiceProtocol, SalvagesRequestIdFromBrokenRequests) {
  EXPECT_EQ(svc::SalvageRequestId(R"({"id":"r7","op":"nope"})"), "r7");
  EXPECT_EQ(svc::SalvageRequestId("not json at all"), "");
  EXPECT_EQ(svc::SalvageRequestId(R"({"id":42})"), "");  // non-string id
}

TEST(ServiceProtocol, BuildsEveryTopologyKind) {
  svc::TopologyRequest request;
  request.kind = "rings";
  EXPECT_EQ(svc::BuildTopology(request).switch_count(), 24u);
  request.kind = "mixed";
  EXPECT_EQ(svc::BuildTopology(request).switch_count(), 16u);
  request.kind = "hypercube";
  request.dim = 3;
  EXPECT_EQ(svc::BuildTopology(request).switch_count(), 8u);
  // Inline text canonicalizes to the same model as the generator.
  svc::TopologyRequest text;
  text.kind = "text";
  text.text = topo::ToText(topo::MakeMixedDensity16());
  EXPECT_EQ(topo::ToText(svc::BuildTopology(text)), text.text);
  svc::TopologyRequest bad;
  bad.kind = "klein-bottle";
  EXPECT_THROW(svc::BuildTopology(bad), ConfigError);
}

// ------------------------------------------------------------- service --

TEST(ServiceExecute, PingAndUnknownAlgo) {
  svc::SchedulingService service;
  EXPECT_EQ(service.Execute(svc::ParseRequest(R"({"id":"p","op":"ping"})")),
            R"({"id":"p","ok":true,"op":"ping"})");
  // Execute never throws: failures render as ok:false responses.
  const std::string error =
      service.Execute(svc::ParseRequest(R"({"id":"e","op":"schedule","algo":"bogus"})"));
  const JsonValue parsed = svc::ParseJson(error);
  EXPECT_FALSE(parsed.Find("ok")->AsBool("ok"));
  EXPECT_EQ(parsed.Find("id")->AsString("id"), "e");
  EXPECT_NE(parsed.Find("error")->AsString("error").find("bogus"), std::string::npos);
}

TEST(ServiceExecute, ScheduleCachesModelsAndResults) {
  svc::SchedulingService service;
  const svc::Request request =
      svc::ParseRequest(R"({"id":"s","op":"schedule","topology":{"kind":"mixed"}})");
  const JsonValue first = svc::ParseJson(service.Execute(request));
  EXPECT_TRUE(first.Find("ok")->AsBool("ok"));
  EXPECT_EQ(first.Find("model_cache")->AsString("model_cache"), "miss");
  EXPECT_EQ(first.Find("result_cache")->AsString("result_cache"), "miss");

  const JsonValue repeat = svc::ParseJson(service.Execute(request));
  EXPECT_EQ(repeat.Find("model_cache")->AsString("model_cache"), "hit");
  EXPECT_EQ(repeat.Find("result_cache")->AsString("result_cache"), "hit");
  EXPECT_EQ(repeat.Find("text")->AsString("text"), first.Find("text")->AsString("text"));

  // The response text is the canonical CLI rendering.
  const topo::SwitchGraph graph = topo::MakeMixedDensity16();
  const route::UpDownRouting routing(graph);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);
  const sched::SearchResult direct =
      svc::RunMappingSearch(table, svc::EvenClusterSizes(16, 4), svc::SearchKnobs{});
  EXPECT_EQ(first.Find("text")->AsString("text"), sched::FormatSearchResult(direct));

  // Same network described as inline text: canonical key, so a cache hit.
  svc::JsonObjectWriter topology;
  topology.Field("kind", "text");
  topology.Field("text", topo::ToText(graph));
  svc::JsonObjectWriter as_text;
  as_text.Field("id", "s2");
  as_text.Field("op", "schedule");
  as_text.Raw("topology", topology.Finish());
  const JsonValue aliased = svc::ParseJson(service.Execute(svc::ParseRequest(as_text.Finish())));
  EXPECT_EQ(aliased.Find("model_cache")->AsString("model_cache"), "hit");
  EXPECT_EQ(aliased.Find("result_cache")->AsString("result_cache"), "hit");
}

TEST(ServiceExecute, QualityEvaluatesPartition) {
  svc::SchedulingService service;
  const std::string response = service.Execute(svc::ParseRequest(
      R"({"id":"q","op":"quality","topology":{"kind":"mixed"},)"
      R"("partition":[0,0,0,0,1,1,1,1,2,2,2,2,3,3,3,3]})"));
  const JsonValue parsed = svc::ParseJson(response);
  ASSERT_TRUE(parsed.Find("ok")->AsBool("ok")) << response;

  const topo::SwitchGraph graph = topo::MakeMixedDensity16();
  const route::UpDownRouting routing(graph);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);
  const qual::Partition partition(
      std::vector<std::size_t>{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3});
  const double fg = qual::GlobalSimilarity(table, partition);
  const double dg = qual::GlobalDissimilarity(table, partition);
  EXPECT_EQ(svc::FormatJsonNumber(fg), svc::FormatJsonNumber(
                                           parsed.Find("fg")->AsDouble("fg")));
  EXPECT_EQ(svc::FormatJsonNumber(dg / fg),
            svc::FormatJsonNumber(parsed.Find("cc")->AsDouble("cc")));

  // Wrong-length partitions are rejected per-request, not fatally.
  const JsonValue error = svc::ParseJson(service.Execute(svc::ParseRequest(
      R"({"op":"quality","topology":{"kind":"mixed"},"partition":[0,1]})")));
  EXPECT_FALSE(error.Find("ok")->AsBool("ok"));
}

TEST(ServiceExecute, SimulateRendersSweepPoints) {
  svc::SchedulingService service;
  const std::string response = service.Execute(svc::ParseRequest(
      R"({"id":"m","op":"simulate","topology":{"kind":"random","switches":12},)"
      R"("mapping":"blocked","points":2,"max_rate":0.4,"warmup":500,"measure":1500})"));
  const JsonValue parsed = svc::ParseJson(response);
  ASSERT_TRUE(parsed.Find("ok")->AsBool("ok")) << response;
  EXPECT_EQ(parsed.Find("points")->AsArray("points").size(), 2u);
  const std::string text = parsed.Find("text")->AsString("text");
  EXPECT_NE(text.find("mapping: "), std::string::npos);
  EXPECT_NE(text.find("throughput: "), std::string::npos);
  EXPECT_NE(text.find("| offered |"), std::string::npos);
  // Deterministic: the same request renders byte-identically.
  const JsonValue again = svc::ParseJson(service.Execute(svc::ParseRequest(
      R"({"id":"m","op":"simulate","topology":{"kind":"random","switches":12},)"
      R"("mapping":"blocked","points":2,"max_rate":0.4,"warmup":500,"measure":1500})")));
  EXPECT_EQ(again.Find("text")->AsString("text"), text);
  EXPECT_EQ(again.Find("model_cache")->AsString("model_cache"), "hit");
}

TEST(ServiceExecute, StatsReportsCacheCounters) {
  svc::SchedulingService service;
  (void)service.Execute(svc::ParseRequest(R"({"op":"schedule","topology":{"kind":"mixed"}})"));
  (void)service.Execute(svc::ParseRequest(R"({"op":"schedule","topology":{"kind":"mixed"}})"));
  const JsonValue stats =
      svc::ParseJson(service.Execute(svc::ParseRequest(R"({"id":"st","op":"stats"})")));
  ASSERT_TRUE(stats.Find("ok")->AsBool("ok"));
  EXPECT_EQ(stats.Find("executed")->AsUint("executed"), 3u);
  const JsonValue* topo_cache = stats.Find("topology_cache");
  ASSERT_NE(topo_cache, nullptr);
  EXPECT_EQ(topo_cache->Find("hits")->AsUint("hits"), 1u);
  EXPECT_EQ(topo_cache->Find("misses")->AsUint("misses"), 1u);
  const JsonValue* result_cache = stats.Find("result_cache");
  ASSERT_NE(result_cache, nullptr);
  EXPECT_EQ(result_cache->Find("hits")->AsUint("hits"), 1u);
}

// --------------------------------------------------------------- batch --

TEST(ServiceBatch, ParsesEntriesAndCapturesPerEntryErrors) {
  const svc::Request batch = svc::ParseRequest(
      R"({"id":"f","op":"batch","requests":[)"
      R"({"id":"a","op":"ping"},)"
      R"({"id":"bad","op":"launch"},)"
      R"({"id":"b","op":"stats"}]})");
  EXPECT_EQ(batch.op, svc::RequestOp::kBatch);
  ASSERT_EQ(batch.batch.size(), 3u);
  EXPECT_TRUE(batch.batch[0].error.empty());
  EXPECT_EQ(batch.batch[0].request.id, "a");
  // The malformed middle entry is captured, not dropped, and its id is
  // salvaged for the error response.
  EXPECT_FALSE(batch.batch[1].error.empty());
  EXPECT_EQ(batch.batch[1].salvaged_id, "bad");
  EXPECT_TRUE(batch.batch[2].error.empty());
}

TEST(ServiceBatch, RejectsDegenerateFrames) {
  // requests must be a non-empty array and only valid on op batch.
  EXPECT_THROW(svc::ParseRequest(R"({"op":"batch"})"), ConfigError);
  EXPECT_THROW(svc::ParseRequest(R"({"op":"batch","requests":[]})"), ConfigError);
  EXPECT_THROW(svc::ParseRequest(R"({"op":"ping","requests":[{"op":"ping"}]})"),
               ConfigError);
  // A nested batch is isolated like any other bad entry, not a frame error.
  const svc::Request nested = svc::ParseRequest(
      R"({"id":"n","op":"batch","requests":[{"id":"inner","op":"batch",)"
      R"("requests":[{"op":"ping"}]}]})");
  ASSERT_EQ(nested.batch.size(), 1u);
  EXPECT_NE(nested.batch[0].error.find("batch"), std::string::npos)
      << nested.batch[0].error;
  EXPECT_EQ(nested.batch[0].salvaged_id, "inner");
}

TEST(ServiceBatch, SubResponsesAreByteIdenticalToStandaloneExecution) {
  svc::SchedulingService service;
  const char* kSub[] = {
      R"({"id":"s1","op":"schedule","topology":{"kind":"mixed"}})",
      R"({"id":"p1","op":"ping"})",
      R"({"id":"s2","op":"schedule","topology":{"kind":"mixed"}})",
  };
  // Standalone baseline on a fresh service so cache hit/miss markers align.
  std::vector<std::string> standalone;
  {
    svc::SchedulingService reference;
    for (const char* line : kSub) {
      standalone.push_back(reference.Execute(svc::ParseRequest(line)));
    }
  }
  const std::string frame = std::string(R"({"id":"f","op":"batch","requests":[)") +
                            kSub[0] + "," + kSub[1] + "," + kSub[2] + "]}";
  const std::string text = service.Execute(svc::ParseRequest(frame));
  const JsonValue response = svc::ParseJson(text);
  ASSERT_TRUE(response.Find("ok")->AsBool("ok"));
  EXPECT_EQ(response.Find("op")->AsString("op"), "batch");
  EXPECT_EQ(response.Find("count")->AsUint("count"), 3u);
  EXPECT_EQ(response.Find("failed")->AsUint("failed"), 0u);
  ASSERT_EQ(response.Find("responses")->AsArray("responses").size(), 3u);
  // Sub-responses are embedded raw, so each standalone rendering must occur
  // verbatim — byte-identical — and in admission order.
  std::size_t from = 0;
  for (std::size_t i = 0; i < standalone.size(); ++i) {
    const std::size_t at = text.find(standalone[i], from);
    ASSERT_NE(at, std::string::npos) << "sub-response " << i << " not verbatim in " << text;
    from = at + standalone[i].size();
  }
}

TEST(ServiceBatch, MalformedEntryIsolatedWithBatchIdAndIndex) {
  svc::SchedulingService service;
  const std::string frame =
      R"({"id":"frame9","op":"batch","requests":[)"
      R"({"id":"ok1","op":"ping"},)"
      R"({"id":"broken","op":"ping","bogus_key":1},)"
      R"({"id":"ok2","op":"ping"}]})";
  const JsonValue response = svc::ParseJson(service.Execute(svc::ParseRequest(frame)));
  ASSERT_TRUE(response.Find("ok")->AsBool("ok"));  // the frame succeeds
  EXPECT_EQ(response.Find("failed")->AsUint("failed"), 1u);
  const auto& responses = response.Find("responses")->AsArray("responses");
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].Find("ok")->AsBool("ok"));
  EXPECT_TRUE(responses[2].Find("ok")->AsBool("ok"));
  // The error object correlates: salvaged entry id, enclosing batch id, and
  // the entry's index in the frame.
  const JsonValue& error = responses[1];
  EXPECT_FALSE(error.Find("ok")->AsBool("ok"));
  EXPECT_EQ(error.Find("id")->AsString("id"), "broken");
  EXPECT_EQ(error.Find("batch")->AsString("batch"), "frame9");
  EXPECT_EQ(error.Find("index")->AsUint("index"), 1u);
  EXPECT_NE(error.Find("error")->AsString("error").find("bogus_key"), std::string::npos);
}

TEST(ServiceBatch, SharesModelAcrossEntriesInOneFrame) {
  svc::SchedulingService service;
  const std::string frame =
      R"({"id":"f","op":"batch","requests":[)"
      R"({"id":"a","op":"schedule","topology":{"kind":"mixed"}},)"
      R"({"id":"b","op":"quality","topology":{"kind":"mixed"},)"
      R"("partition":[0,0,0,0,1,1,1,1,2,2,2,2,3,3,3,3]}]})";
  (void)service.Execute(svc::ParseRequest(frame));
  // One topology, two sub-requests: exactly one model solve.
  EXPECT_EQ(service.TopologyCacheStats().misses, 1u);
  EXPECT_EQ(service.TopologyCacheStats().hits, 1u);
}

// -------------------------------------------------------------- daemon --

TEST(ServiceDaemon, DeliversEveryResponseExactlyOnce) {
  svc::SchedulingService service;
  svc::DaemonOptions options;
  options.workers = 4;
  options.queue_capacity = 8;
  svc::Daemon daemon(service, options);
  std::mutex mutex;
  std::vector<std::string> responses;
  for (int i = 0; i < 16; ++i) {
    daemon.Submit(R"({"id":"d)" + std::to_string(i) + R"(","op":"ping"})",
                  [&mutex, &responses](const std::string& response) {
                    std::lock_guard<std::mutex> lock(mutex);
                    responses.push_back(response);
                  });
  }
  daemon.Drain();
  EXPECT_EQ(responses.size(), 16u);
  EXPECT_EQ(daemon.served(), 16u);
  std::set<std::string> ids;
  for (const std::string& response : responses) {
    ids.insert(svc::ParseJson(response).Find("id")->AsString("id"));
  }
  EXPECT_EQ(ids.size(), 16u);  // every request answered exactly once
}

TEST(ServiceDaemon, BackpressureBlocksSubmitWhenQueueFull) {
  svc::SchedulingService service;
  svc::DaemonOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  svc::Daemon daemon(service, options);
  std::atomic<int> done{0};
  daemon.Submit(R"({"op":"sleep","ms":150})", [&done](const std::string&) { done++; });
  const auto start = std::chrono::steady_clock::now();
  // The queue slot is held by the sleeping request: this Submit must block
  // until the worker finishes it.
  daemon.Submit(R"({"op":"ping"})", [&done](const std::string&) { done++; });
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(waited).count(), 50);
  daemon.Drain();
  EXPECT_EQ(done.load(), 2);
}

TEST(ServiceDaemon, ExpiredDeadlineAnsweredWithError) {
  svc::SchedulingService service;
  svc::DaemonOptions options;
  options.workers = 1;
  options.queue_capacity = 4;
  svc::Daemon daemon(service, options);
  std::mutex mutex;
  std::map<std::string, std::string> responses;
  auto sink = [&mutex, &responses](const std::string& response) {
    const svc::JsonValue parsed = svc::ParseJson(response);
    std::lock_guard<std::mutex> lock(mutex);
    responses[parsed.Find("id")->AsString("id")] = response;
  };
  // The worker is busy for 200ms; the 1ms-deadline request behind it must
  // expire in the queue, the no-deadline request must still execute.
  daemon.Submit(R"({"id":"slow","op":"sleep","ms":200})", sink);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // ensure ordering
  daemon.Submit(R"({"id":"late","op":"ping","deadline_ms":1})", sink);
  daemon.Submit(R"({"id":"ok","op":"ping"})", sink);
  daemon.Drain();
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(svc::ParseJson(responses["slow"]).Find("ok")->AsBool("ok"));
  EXPECT_TRUE(svc::ParseJson(responses["ok"]).Find("ok")->AsBool("ok"));
  const svc::JsonValue late = svc::ParseJson(responses["late"]);
  EXPECT_FALSE(late.Find("ok")->AsBool("ok"));
  EXPECT_NE(late.Find("error")->AsString("error").find("deadline"), std::string::npos);
}

TEST(ServiceDaemon, RejectsSubmissionsWhileDraining) {
  svc::SchedulingService service;
  svc::Daemon daemon(service);
  daemon.RequestDrain();
  EXPECT_TRUE(daemon.draining());
  std::string response;
  daemon.Submit(R"({"id":"r","op":"ping"})",
                [&response](const std::string& r) { response = r; });
  const svc::JsonValue parsed = svc::ParseJson(response);
  EXPECT_FALSE(parsed.Find("ok")->AsBool("ok"));
  EXPECT_NE(parsed.Find("error")->AsString("error").find("drain"), std::string::npos);
}

TEST(ServiceDaemon, StdioServerAnswersEveryLine) {
  svc::ResetDrainSignalForTesting();
  svc::SchedulingService service;
  std::istringstream in(
      "{\"id\":\"a\",\"op\":\"ping\"}\n"
      "\n"  // blank lines are skipped, not answered
      "this is not json\n"
      "{\"id\":\"b\",\"op\":\"schedule\",\"topology\":{\"kind\":\"mixed\"}}\n"
      "{\"id\":\"c\",\"op\":\"stats\"}\n");
  std::ostringstream out;
  svc::DaemonOptions options;
  options.workers = 2;
  EXPECT_EQ(svc::RunStdioServer(service, options, in, out), 0);
  std::istringstream lines(out.str());
  std::string line;
  std::set<std::string> ids;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    const svc::JsonValue parsed = svc::ParseJson(line);  // every line valid JSON
    const svc::JsonValue* id = parsed.Find("id");
    if (id != nullptr) ids.insert(id->AsString("id"));
  }
  EXPECT_EQ(count, 4u);  // 3 ids + 1 id-less parse error
  EXPECT_EQ(ids, (std::set<std::string>{"a", "b", "c"}));
}

/// Captures the daemon's announce line and lets the test wait for it.
class AnnounceBuffer : public std::stringbuf {
 public:
  int sync() override {
    std::lock_guard<std::mutex> lock(mutex_);
    text_ = str();
    ready_.notify_all();
    return 0;
  }

  std::uint16_t WaitForPort() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return text_.find('\n') != std::string::npos; });
    const std::string prefix = "listening on 127.0.0.1:";
    const std::size_t at = text_.find(prefix);
    EXPECT_NE(at, std::string::npos) << text_;
    return static_cast<std::uint16_t>(std::stoul(text_.substr(at + prefix.size())));
  }

 private:
  std::mutex mutex_;
  std::condition_variable ready_;
  std::string text_;
};

int ConnectLoopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

std::string ReadLineFromFd(int fd) {
  std::string line;
  char c = 0;
  while (::read(fd, &c, 1) == 1) {
    if (c == '\n') break;
    line.push_back(c);
  }
  return line;
}

TEST(ServiceDaemon, TcpServerServesAndDrainsOnSignal) {
  svc::ResetDrainSignalForTesting();
  svc::SchedulingService service;
  svc::DaemonOptions options;
  options.workers = 2;
  AnnounceBuffer announce_buffer;
  std::ostream announce(&announce_buffer);
  int rc = -1;
  std::thread server([&service, &options, &announce, &rc] {
    rc = svc::RunTcpServer(service, options, 0, announce);
  });
  const std::uint16_t port = announce_buffer.WaitForPort();

  const int fd = ConnectLoopback(port);
  const std::string request = "{\"id\":\"t1\",\"op\":\"ping\"}\n{\"id\":\"t2\",\"op\":\"stats\"}\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::set<std::string> ids;
  ids.insert(svc::ParseJson(ReadLineFromFd(fd)).Find("id")->AsString("id"));
  ids.insert(svc::ParseJson(ReadLineFromFd(fd)).Find("id")->AsString("id"));
  EXPECT_EQ(ids, (std::set<std::string>{"t1", "t2"}));
  ::close(fd);

  // Drain: raise the signal (the handler only sets the flag), then poke the
  // blocked accept with a throwaway connection so the loop re-checks it.
  ::raise(SIGTERM);
  const int poke = ConnectLoopback(port);
  ::close(poke);
  server.join();
  EXPECT_EQ(rc, 0);
  svc::ResetDrainSignalForTesting();
}

}  // namespace
}  // namespace commsched
