#include "routing/deadlock.h"

#include <gtest/gtest.h>

#include "routing/shortest_path.h"
#include "routing/updown.h"
#include "topology/generator.h"
#include "topology/library.h"

namespace commsched::route {
namespace {

TEST(Deadlock, DirectedChannelLayout) {
  const topo::SwitchGraph ring = topo::MakeRing(4);
  const auto channels = DirectedChannels(ring);
  ASSERT_EQ(channels.size(), 8u);
  for (topo::LinkId l = 0; l < 4; ++l) {
    EXPECT_EQ(channels[2 * l].from, ring.link(l).a);
    EXPECT_EQ(channels[2 * l].to, ring.link(l).b);
    EXPECT_EQ(channels[2 * l + 1].from, ring.link(l).b);
    EXPECT_EQ(channels[2 * l + 1].to, ring.link(l).a);
  }
}

TEST(Deadlock, ChannelIndexRoundTrip) {
  const topo::SwitchGraph ring = topo::MakeRing(4);
  const auto channels = DirectedChannels(ring);
  for (std::size_t c = 0; c < channels.size(); ++c) {
    EXPECT_EQ(ChannelIndex(ring, channels[c].link, channels[c].from), c);
  }
}

TEST(Deadlock, UpDownIsDeadlockFreeOnIrregularNetworks) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    topo::IrregularTopologyOptions options;
    options.switch_count = 16;
    options.seed = seed;
    const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
    const UpDownRouting routing(g);
    EXPECT_TRUE(IsDeadlockFree(routing)) << "seed " << seed;
  }
}

TEST(Deadlock, UpDownIsDeadlockFreeOnRingsAndTori) {
  {
    const topo::SwitchGraph g = topo::MakeRing(8);
    const UpDownRouting routing(g, topo::SwitchId{0});
    EXPECT_TRUE(IsDeadlockFree(routing));
  }
  {
    const topo::SwitchGraph g = topo::MakeTorus2D(3, 3);
    const UpDownRouting routing(g);
    EXPECT_TRUE(IsDeadlockFree(routing));
  }
  {
    const topo::SwitchGraph g = topo::MakeFourRingsOfSix();
    const UpDownRouting routing(g);
    EXPECT_TRUE(IsDeadlockFree(routing));
  }
}

TEST(Deadlock, UnrestrictedShortestPathOnRingHasCycle) {
  // Classic result: minimal adaptive routing on a ring (>= 5 switches so
  // that every channel is on some minimal route in a fixed direction) has a
  // cyclic channel dependency on one virtual channel.
  const topo::SwitchGraph ring = topo::MakeRing(6);
  const ShortestPathRouting routing(ring);
  EXPECT_FALSE(IsDeadlockFree(routing));
  const auto cycle = FindDependencyCycle(routing);
  ASSERT_GE(cycle.size(), 3u);
  // The reported cycle is a real cycle in the CDG.
  const auto cdg = BuildChannelDependencyGraph(routing);
  for (std::size_t k = 0; k < cycle.size(); ++k) {
    const std::size_t from = cycle[k];
    const std::size_t to = cycle[(k + 1) % cycle.size()];
    EXPECT_NE(std::find(cdg[from].begin(), cdg[from].end(), to), cdg[from].end())
        << "missing CDG edge " << from << " -> " << to;
  }
}

TEST(Deadlock, ShortestPathOnTreeIsDeadlockFree) {
  // A tree has no cycles at all, so even unrestricted routing is safe.
  const topo::SwitchGraph star = topo::MakeStar(5);
  const ShortestPathRouting routing(star);
  EXPECT_TRUE(IsDeadlockFree(routing));
}

TEST(Deadlock, CdgHasNoSelfLoops) {
  const topo::SwitchGraph g = topo::MakeFourRingsOfSix();
  const UpDownRouting routing(g);
  const auto cdg = BuildChannelDependencyGraph(routing);
  for (std::size_t c = 0; c < cdg.size(); ++c) {
    EXPECT_EQ(std::find(cdg[c].begin(), cdg[c].end(), c), cdg[c].end());
  }
}

}  // namespace
}  // namespace commsched::route
