#include "topology/generator.h"

#include <gtest/gtest.h>

namespace commsched::topo {
namespace {

TEST(Generator, PaperConfigurationSixteenSwitches) {
  IrregularTopologyOptions options;
  options.switch_count = 16;
  options.seed = 1;
  const SwitchGraph g = GenerateIrregularTopology(options);
  EXPECT_EQ(g.switch_count(), 16u);
  EXPECT_EQ(g.hosts_per_switch(), 4u);
  EXPECT_EQ(g.host_count(), 64u);
  EXPECT_TRUE(g.IsConnected());
  for (SwitchId s = 0; s < 16; ++s) {
    EXPECT_EQ(g.Degree(s), 3u) << "switch " << s;
  }
  EXPECT_EQ(g.link_count(), 16u * 3 / 2);
}

TEST(Generator, DeterministicInSeed) {
  IrregularTopologyOptions options;
  options.switch_count = 20;
  options.seed = 77;
  const SwitchGraph a = GenerateIrregularTopology(options);
  const SwitchGraph b = GenerateIrregularTopology(options);
  ASSERT_EQ(a.link_count(), b.link_count());
  for (LinkId l = 0; l < a.link_count(); ++l) {
    EXPECT_EQ(a.link(l).a, b.link(l).a);
    EXPECT_EQ(a.link(l).b, b.link(l).b);
  }
}

TEST(Generator, DifferentSeedsGiveDifferentTopologies) {
  IrregularTopologyOptions options;
  options.switch_count = 16;
  options.seed = 1;
  const SwitchGraph a = GenerateIrregularTopology(options);
  options.seed = 2;
  const SwitchGraph b = GenerateIrregularTopology(options);
  bool differs = false;
  for (LinkId l = 0; l < a.link_count() && !differs; ++l) {
    differs = !(a.link(l) == b.link(l));
  }
  EXPECT_TRUE(differs);
}

// Parameterized sweep over the paper's network size range (16..24 switches).
class GeneratorSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GeneratorSizeSweep, DegreeConstraintAndConnectivityHold) {
  IrregularTopologyOptions options;
  options.switch_count = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    options.seed = seed;
    const SwitchGraph g = GenerateIrregularTopology(options);
    EXPECT_TRUE(g.IsConnected());
    std::size_t short_switches = 0;
    for (SwitchId s = 0; s < g.switch_count(); ++s) {
      EXPECT_LE(g.Degree(s), 3u);
      if (g.Degree(s) < 3) ++short_switches;
    }
    // At most one switch may be one link short (odd port pairing).
    EXPECT_LE(short_switches, (options.switch_count * 3) % 2 == 0 ? 0u : 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, GeneratorSizeSweep,
                         ::testing::Values(16, 17, 18, 19, 20, 21, 22, 23, 24));

TEST(Generator, CustomDegreeRespected) {
  IrregularTopologyOptions options;
  options.switch_count = 12;
  options.interswitch_degree = 4;
  options.seed = 5;
  const SwitchGraph g = GenerateIrregularTopology(options);
  for (SwitchId s = 0; s < 12; ++s) {
    EXPECT_EQ(g.Degree(s), 4u);
  }
}

TEST(Generator, InfeasibleParametersThrow) {
  IrregularTopologyOptions options;
  options.switch_count = 4;
  options.interswitch_degree = 4;  // degree >= switch count
  EXPECT_THROW((void)GenerateIrregularTopology(options), ConfigError);
  options.switch_count = 0;
  EXPECT_THROW((void)GenerateIrregularTopology(options), ConfigError);
  options.switch_count = 4;
  options.interswitch_degree = 0;
  EXPECT_THROW((void)GenerateIrregularTopology(options), ConfigError);
}

TEST(Generator, SingleSwitchTrivial) {
  IrregularTopologyOptions options;
  options.switch_count = 1;
  const SwitchGraph g = GenerateIrregularTopology(options);
  EXPECT_EQ(g.switch_count(), 1u);
  EXPECT_EQ(g.link_count(), 0u);
}

TEST(Generator, RandomTreeIsSpanningTree) {
  Rng rng(41);
  const SwitchGraph g = GenerateRandomTree(10, 4, 3, rng);
  EXPECT_EQ(g.link_count(), 9u);
  EXPECT_TRUE(g.IsConnected());
  for (SwitchId s = 0; s < 10; ++s) {
    EXPECT_LE(g.Degree(s), 3u);
  }
}

TEST(Generator, RandomTreeDegreeTwoIsAPath) {
  Rng rng(43);
  const SwitchGraph g = GenerateRandomTree(8, 1, 2, rng);
  EXPECT_TRUE(g.IsConnected());
  std::size_t leaves = 0;
  for (SwitchId s = 0; s < 8; ++s) {
    EXPECT_LE(g.Degree(s), 2u);
    if (g.Degree(s) == 1) ++leaves;
  }
  EXPECT_EQ(leaves, 2u);
}

TEST(Generator, HostsPerSwitchConfigurable) {
  IrregularTopologyOptions options;
  options.switch_count = 16;
  options.hosts_per_switch = 2;
  const SwitchGraph g = GenerateIrregularTopology(options);
  EXPECT_EQ(g.host_count(), 32u);
}

}  // namespace
}  // namespace commsched::topo
