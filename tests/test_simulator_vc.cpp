// Simulator behaviour with multiple virtual channels and the Duato
// fully-adaptive policy.
#include <gtest/gtest.h>

#include "routing/shortest_path.h"
#include "routing/updown.h"
#include "simnet/simulator.h"
#include "simnet/sweep.h"
#include "topology/generator.h"
#include "topology/library.h"

namespace commsched::sim {
namespace {

struct Fixture {
  topo::SwitchGraph graph;
  route::UpDownRouting routing;
  work::Workload workload;
  work::ProcessMapping mapping;
  TrafficPattern pattern;

  explicit Fixture(std::uint64_t seed = 1, std::size_t switches = 16)
      : graph(topo::GenerateIrregularTopology({switches, 4, 3, seed, 1000})),
        routing(graph),
        workload(work::Workload::Uniform(4, switches)),
        mapping(Make(graph, workload, seed)),
        pattern(graph, workload, mapping) {}

  static work::ProcessMapping Make(const topo::SwitchGraph& g, const work::Workload& w,
                                   std::uint64_t seed) {
    Rng rng(seed);
    return work::ProcessMapping::RandomAligned(g, w, rng);
  }
};

SimConfig FastConfig(std::size_t vcs) {
  SimConfig config;
  config.warmup_cycles = 2000;
  config.measure_cycles = 6000;
  config.virtual_channels = vcs;
  return config;
}

TEST(SimulatorVc, MultiVcDeliversAtLowLoad) {
  const Fixture f;
  NetworkSimulator sim(f.graph, f.routing, f.pattern, FastConfig(2));
  const SimMetrics m = sim.Run(0.1);
  EXPECT_GT(m.messages_delivered, 100u);
  EXPECT_NEAR(m.accepted_flits_per_switch_cycle, m.offered_flits_per_switch_cycle, 0.01);
  EXPECT_FALSE(m.deadlock_detected);
}

TEST(SimulatorVc, PolicyVcCountMustMatchConfig) {
  const Fixture f;
  const SingleClassVcPolicy policy(f.routing, 2, false);
  SimConfig config = FastConfig(3);  // mismatch
  EXPECT_THROW(NetworkSimulator sim(f.graph, policy, f.pattern, config),
               commsched::ContractError);
}

TEST(SimulatorVc, MoreVcsNeverHurtThroughputMuch) {
  // VCs relieve head-of-line blocking; throughput with 4 VCs should be at
  // least that of 1 VC (within noise) on the same mapping.
  const Fixture f;
  NetworkSimulator sim1(f.graph, f.routing, f.pattern, FastConfig(1));
  NetworkSimulator sim4(f.graph, f.routing, f.pattern, FastConfig(4));
  const double t1 = sim1.Run(1.2).accepted_flits_per_switch_cycle;
  const double t4 = sim4.Run(1.2).accepted_flits_per_switch_cycle;
  EXPECT_GE(t4, 0.95 * t1);
}

TEST(SimulatorVc, DuatoPolicyRunsWithoutDeadlockOnIrregular) {
  const Fixture f;
  const DuatoFullyAdaptivePolicy policy(f.graph, 2);
  SimConfig config = FastConfig(2);
  NetworkSimulator sim(f.graph, policy, f.pattern, config);
  const SimMetrics m = sim.Run(1.2);
  EXPECT_FALSE(m.deadlock_detected);
  EXPECT_GT(m.messages_delivered, 0u);
}

TEST(SimulatorVc, DuatoBeatsPlainUpDownOnSaturatedIrregularNet) {
  // The classic result that motivated adaptive routing for NOWs: minimal
  // adaptive routing with an up*/down* escape outperforms pure up*/down*
  // under saturation (it avoids the root bottleneck).
  const Fixture f;
  NetworkSimulator updown(f.graph, f.routing, f.pattern, FastConfig(2));
  const DuatoFullyAdaptivePolicy policy(f.graph, 2);
  NetworkSimulator duato(f.graph, policy, f.pattern, FastConfig(2));
  const double t_ud = updown.Run(1.4).accepted_flits_per_switch_cycle;
  const double t_duato = duato.Run(1.4).accepted_flits_per_switch_cycle;
  EXPECT_GE(t_duato, t_ud * 0.95);  // never collapses; usually clearly better
}

TEST(SimulatorVc, DuatoSolvesTheRingDeadlock) {
  // Unrestricted minimal routing on a ring deadlocks on one VC (see
  // test_simulator); with the escape channel it must not.
  const topo::SwitchGraph ring = topo::MakeRing(6, 4);
  const work::Workload workload = work::Workload::Uniform(2, 12);
  Rng rng(3);
  const auto mapping = work::ProcessMapping::RandomAligned(ring, workload, rng);
  const TrafficPattern pattern(ring, workload, mapping);
  const DuatoFullyAdaptivePolicy policy(ring, 2);
  SimConfig config;
  config.warmup_cycles = 4000;
  config.measure_cycles = 12000;
  config.virtual_channels = 2;
  config.deadlock_threshold_cycles = 1000;
  config.input_buffer_flits = 2;
  config.message_length_flits = 32;
  NetworkSimulator sim(ring, policy, pattern, config);
  const SimMetrics m = sim.Run(1.6);
  EXPECT_FALSE(m.deadlock_detected);
  EXPECT_GT(m.flits_delivered, 0u);
}

TEST(SimulatorVc, DeterministicForSameSeedAcrossPolicies) {
  const Fixture f;
  const DuatoFullyAdaptivePolicy policy(f.graph, 3);
  SimConfig config = FastConfig(3);
  NetworkSimulator a(f.graph, policy, f.pattern, config);
  NetworkSimulator b(f.graph, policy, f.pattern, config);
  const SimMetrics ma = a.Run(0.4);
  const SimMetrics mb = b.Run(0.4);
  EXPECT_EQ(ma.flits_delivered, mb.flits_delivered);
  EXPECT_DOUBLE_EQ(ma.avg_latency_cycles, mb.avg_latency_cycles);
}

TEST(SimulatorVc, SweepWorksWithExplicitPolicy) {
  const Fixture f;
  const DuatoFullyAdaptivePolicy policy(f.graph, 2);
  // RunLoadSweep takes a Routing; for policies, drive the simulator
  // manually across rates.
  SimConfig config = FastConfig(2);
  double last_accepted = 0.0;
  for (double rate : {0.1, 0.5}) {
    NetworkSimulator sim(f.graph, policy, f.pattern, config);
    const SimMetrics m = sim.Run(rate);
    EXPECT_GE(m.accepted_flits_per_switch_cycle, last_accepted);
    last_accepted = m.accepted_flits_per_switch_cycle;
  }
}

}  // namespace
}  // namespace commsched::sim
