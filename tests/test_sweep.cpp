#include "simnet/sweep.h"

#include <gtest/gtest.h>

#include "routing/updown.h"
#include "topology/generator.h"

namespace commsched::sim {
namespace {

struct Fixture {
  topo::SwitchGraph graph;
  route::UpDownRouting routing;
  work::Workload workload;
  work::ProcessMapping mapping;
  TrafficPattern pattern;

  Fixture()
      : graph(topo::GenerateIrregularTopology({16, 4, 3, 1, 1000})),
        routing(graph),
        workload(work::Workload::Uniform(4, 16)),
        mapping(MakeMapping(graph, workload)),
        pattern(graph, workload, mapping) {}

  static work::ProcessMapping MakeMapping(const topo::SwitchGraph& g,
                                          const work::Workload& w) {
    Rng rng(11);
    return work::ProcessMapping::RandomAligned(g, w, rng);
  }
};

SweepOptions FastSweep() {
  SweepOptions options;
  options.points = 5;
  options.min_rate = 0.05;
  options.max_rate = 0.9;
  options.config.warmup_cycles = 1500;
  options.config.measure_cycles = 4000;
  return options;
}

TEST(Sweep, RatesDefaultingRule) {
  SweepOptions options;
  options.points = 9;
  options.min_rate = 0.1;
  options.max_rate = 0.9;
  const auto rates = SweepRates(options);
  ASSERT_EQ(rates.size(), 9u);
  EXPECT_DOUBLE_EQ(rates.front(), 0.1);
  EXPECT_DOUBLE_EQ(rates.back(), 0.9);
  EXPECT_NEAR(rates[4], 0.5, 1e-12);

  options.rates = {0.3, 0.7};
  EXPECT_EQ(SweepRates(options), (std::vector<double>{0.3, 0.7}));
}

TEST(Sweep, InvalidRangeRejected) {
  SweepOptions options;
  options.points = 1;
  EXPECT_THROW((void)SweepRates(options), commsched::ContractError);
  options.points = 5;
  options.min_rate = 0.5;
  options.max_rate = 0.4;
  EXPECT_THROW((void)SweepRates(options), commsched::ContractError);
}

TEST(Sweep, ProducesMonotoneOfferedRates) {
  const Fixture f;
  const SweepResult result = RunLoadSweep(f.graph, f.routing, f.pattern, FastSweep());
  ASSERT_EQ(result.points.size(), 5u);
  for (std::size_t k = 1; k < result.points.size(); ++k) {
    EXPECT_GT(result.points[k].offered_rate, result.points[k - 1].offered_rate);
  }
}

TEST(Sweep, ThroughputIsMaxAccepted) {
  const Fixture f;
  const SweepResult result = RunLoadSweep(f.graph, f.routing, f.pattern, FastSweep());
  double max_accepted = 0.0;
  for (const SweepPoint& p : result.points) {
    max_accepted = std::max(max_accepted, p.metrics.accepted_flits_per_switch_cycle);
  }
  EXPECT_DOUBLE_EQ(result.Throughput(), max_accepted);
  EXPECT_GT(result.Throughput(), 0.0);
}

TEST(Sweep, ParallelMatchesSequential) {
  const Fixture f;
  SweepOptions seq = FastSweep();
  seq.parallel = false;
  SweepOptions par = FastSweep();
  par.parallel = true;
  const SweepResult a = RunLoadSweep(f.graph, f.routing, f.pattern, seq);
  const SweepResult b = RunLoadSweep(f.graph, f.routing, f.pattern, par);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t k = 0; k < a.points.size(); ++k) {
    EXPECT_EQ(a.points[k].metrics.flits_delivered, b.points[k].metrics.flits_delivered);
    EXPECT_DOUBLE_EQ(a.points[k].metrics.avg_latency_cycles,
                     b.points[k].metrics.avg_latency_cycles);
  }
}

TEST(Sweep, SeedReplicatesAreIndependentAndStable) {
  const Fixture f;
  SweepOptions options = FastSweep();
  options.seed_replicates = 3;
  options.parallel = true;
  const SweepResult result = RunLoadSweep(f.graph, f.routing, f.pattern, options);
  // Replicate 0 must be the same stream a single-replicate sweep would use.
  SweepOptions single = FastSweep();
  single.parallel = false;
  const SweepResult base = RunLoadSweep(f.graph, f.routing, f.pattern, single);
  ASSERT_EQ(result.points.size(), base.points.size());
  for (std::size_t k = 0; k < result.points.size(); ++k) {
    const SweepPoint& point = result.points[k];
    ASSERT_EQ(point.replicates.size(), 3u);
    EXPECT_EQ(point.replicates[0].flits_delivered, base.points[k].metrics.flits_delivered);
    EXPECT_EQ(point.metrics.flits_delivered, point.replicates[0].flits_delivered);
    // Distinct seeds must actually vary the arrival schedule.
    EXPECT_NE(point.replicates[1].flits_delivered, point.replicates[0].flits_delivered);
  }
}

TEST(Sweep, EventModeSweepMatchesCycleThroughputShape) {
  const Fixture f;
  SweepOptions cycle = FastSweep();
  SweepOptions event = FastSweep();
  event.config.exec_mode = ExecMode::kEvent;
  const SweepResult a = RunLoadSweep(f.graph, f.routing, f.pattern, cycle);
  const SweepResult b = RunLoadSweep(f.graph, f.routing, f.pattern, event);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t k = 0; k < a.points.size(); ++k) {
    // Same arrival schedules, different arbitration interleavings: accepted
    // rates stay within a few percent at sub-saturation points.
    if (!a.points[k].metrics.Saturated()) {
      EXPECT_NEAR(a.points[k].metrics.accepted_flits_per_switch_cycle,
                  b.points[k].metrics.accepted_flits_per_switch_cycle,
                  0.05 * std::max(0.1, a.points[k].metrics.accepted_flits_per_switch_cycle))
          << "point " << k;
    }
  }
}

TEST(Sweep, SaturationRateFoundUnderHeavySweep) {
  const Fixture f;
  SweepOptions options = FastSweep();
  options.max_rate = 2.2;
  const SweepResult result = RunLoadSweep(f.graph, f.routing, f.pattern, options);
  EXPECT_LT(result.SaturationRate(), 2.3);
  EXPECT_GT(result.SaturationRate(), 0.0);
}

TEST(Sweep, LowLoadLatencyIsFirstPoint) {
  const Fixture f;
  const SweepResult result = RunLoadSweep(f.graph, f.routing, f.pattern, FastSweep());
  EXPECT_DOUBLE_EQ(result.LowLoadLatency(), result.points.front().metrics.avg_latency_cycles);
}

}  // namespace
}  // namespace commsched::sim
