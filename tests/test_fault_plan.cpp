// FaultPlan: JSON round-trip, ordering, validation, and malformed-input
// handling (ISSUE 3 tentpole part 1 + satellite hardening).
#include "faults/fault_plan.h"

#include <gtest/gtest.h>

#include "topology/library.h"

namespace commsched::faults {
namespace {

TEST(FaultPlan, FromEventsSortsByCycleStably) {
  const FaultPlan plan = FaultPlan::FromEvents({
      {200, FaultKind::kLinkUp, 0, 1, 0},
      {100, FaultKind::kSwitchDown, 0, 0, 3},
      {100, FaultKind::kLinkDown, 0, 1, 0},  // same cycle: keeps declared order
  });
  ASSERT_EQ(plan.events().size(), 3u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kSwitchDown);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kLinkDown);
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kLinkUp);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, JsonRoundTrip) {
  const std::string text = R"({"events": [
    {"at": 6000, "kind": "link_down", "a": 0, "b": 1},
    {"at": 6000, "kind": "switch_down", "switch": 3},
    {"at": 20000, "kind": "link_up", "a": 0, "b": 1},
    {"at": 25000, "kind": "switch_up", "switch": 3}
  ]})";
  const FaultPlan plan = FaultPlan::FromJson(text);
  ASSERT_EQ(plan.events().size(), 4u);
  EXPECT_EQ(plan.events()[0].at_cycle, 6000u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(plan.events()[0].a, 0u);
  EXPECT_EQ(plan.events()[0].b, 1u);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kSwitchDown);
  EXPECT_EQ(plan.events()[1].switch_id, 3u);

  const FaultPlan reparsed = FaultPlan::FromJson(plan.ToJson());
  EXPECT_EQ(reparsed.events(), plan.events());
}

TEST(FaultPlan, EmptyPlanRoundTrips) {
  const FaultPlan plan = FaultPlan::FromJson(R"({"events": []})");
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(FaultPlan::FromJson(plan.ToJson()).empty());
}

TEST(FaultPlan, KindNamesAreStable) {
  EXPECT_STREQ(FaultPlan::KindName(FaultKind::kLinkDown), "link_down");
  EXPECT_STREQ(FaultPlan::KindName(FaultKind::kLinkUp), "link_up");
  EXPECT_STREQ(FaultPlan::KindName(FaultKind::kSwitchDown), "switch_down");
  EXPECT_STREQ(FaultPlan::KindName(FaultKind::kSwitchUp), "switch_up");
}

TEST(FaultPlan, MalformedJsonCorpus) {
  struct Case {
    const char* name;
    const char* text;
  };
  const Case cases[] = {
      {"empty", ""},
      {"not json", "hello"},
      {"no events key", R"({"foo": []})"},
      {"events not array", R"({"events": 3})"},
      {"truncated array", R"({"events": [)"},
      {"truncated object", R"({"events": [{"at": 5)"},
      {"missing kind", R"({"events": [{"at": 5, "a": 0, "b": 1}]})"},
      {"missing at", R"({"events": [{"kind": "link_down", "a": 0, "b": 1}]})"},
      {"unknown kind", R"({"events": [{"at": 5, "kind": "meteor", "a": 0, "b": 1}]})"},
      {"link without endpoints", R"({"events": [{"at": 5, "kind": "link_down"}]})"},
      {"link with one endpoint", R"({"events": [{"at": 5, "kind": "link_down", "a": 0}]})"},
      {"self loop", R"({"events": [{"at": 5, "kind": "link_down", "a": 2, "b": 2}]})"},
      {"switch event without switch", R"({"events": [{"at": 5, "kind": "switch_down"}]})"},
      {"switch event with endpoints",
       R"({"events": [{"at": 5, "kind": "switch_down", "switch": 1, "a": 0, "b": 1}]})"},
      {"link event with switch key",
       R"({"events": [{"at": 5, "kind": "link_down", "a": 0, "b": 1, "switch": 2}]})"},
      {"negative cycle", R"({"events": [{"at": -5, "kind": "switch_down", "switch": 1}]})"},
      {"non numeric cycle", R"({"events": [{"at": "soon", "kind": "switch_down", "switch": 1}]})"},
      {"trailing garbage", R"({"events": []} tail)"},
  };
  for (const Case& c : cases) {
    try {
      (void)FaultPlan::FromJson(c.text);
      ADD_FAILURE() << c.name << ": expected ConfigError, got no throw";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find("fault plan"), std::string::npos) << c.name;
    } catch (const std::exception& e) {
      ADD_FAILURE() << c.name << ": wrong exception type: " << e.what();
    }
  }
}

TEST(FaultPlan, ValidateForChecksTopology) {
  const topo::SwitchGraph ring = topo::MakeRing(4);  // links 0-1,1-2,2-3,3-0

  const FaultPlan good = FaultPlan::FromEvents({{10, FaultKind::kLinkDown, 0, 1, 0},
                                                {20, FaultKind::kSwitchDown, 0, 0, 3}});
  EXPECT_NO_THROW(good.ValidateFor(ring));

  const FaultPlan bad_switch = FaultPlan::FromEvents({{10, FaultKind::kSwitchDown, 0, 0, 9}});
  EXPECT_THROW(bad_switch.ValidateFor(ring), ConfigError);

  const FaultPlan bad_endpoint = FaultPlan::FromEvents({{10, FaultKind::kLinkDown, 0, 9, 0}});
  EXPECT_THROW(bad_endpoint.ValidateFor(ring), ConfigError);

  // 0--2 is a chord the ring does not have: only existing links can fail.
  const FaultPlan no_such_link = FaultPlan::FromEvents({{10, FaultKind::kLinkDown, 0, 2, 0}});
  EXPECT_THROW(no_such_link.ValidateFor(ring), ConfigError);
}

}  // namespace
}  // namespace commsched::faults
