#include "topology/graph.h"

#include <gtest/gtest.h>

namespace commsched::topo {
namespace {

SwitchGraph Triangle() {
  SwitchGraph g(3, 4);
  g.AddLink(0, 1);
  g.AddLink(1, 2);
  g.AddLink(2, 0);
  return g;
}

TEST(SwitchGraph, BasicCounts) {
  const SwitchGraph g = Triangle();
  EXPECT_EQ(g.switch_count(), 3u);
  EXPECT_EQ(g.link_count(), 3u);
  EXPECT_EQ(g.hosts_per_switch(), 4u);
  EXPECT_EQ(g.host_count(), 12u);
}

TEST(SwitchGraph, LinksAreNormalized) {
  SwitchGraph g(3, 1);
  g.AddLink(2, 0);
  EXPECT_EQ(g.link(0).a, 0u);
  EXPECT_EQ(g.link(0).b, 2u);
}

TEST(SwitchGraph, RejectsSelfLoopAndDuplicates) {
  SwitchGraph g(3, 1);
  g.AddLink(0, 1);
  EXPECT_THROW(g.AddLink(1, 1), ContractError);
  EXPECT_THROW(g.AddLink(0, 1), ContractError);
  EXPECT_THROW(g.AddLink(1, 0), ContractError);
  EXPECT_THROW(g.AddLink(0, 3), ContractError);
}

TEST(SwitchGraph, NeighborsAndDegree) {
  const SwitchGraph g = Triangle();
  EXPECT_EQ(g.Degree(0), 2u);
  auto n = g.Neighbors(0);
  std::sort(n.begin(), n.end());
  EXPECT_EQ(n, (std::vector<SwitchId>{1, 2}));
}

TEST(SwitchGraph, OtherEnd) {
  const SwitchGraph g = Triangle();
  const auto link = g.FindLink(1, 2);
  ASSERT_TRUE(link.has_value());
  EXPECT_EQ(g.OtherEnd(*link, 1), 2u);
  EXPECT_EQ(g.OtherEnd(*link, 2), 1u);
}

TEST(SwitchGraph, FindLink) {
  const SwitchGraph g = Triangle();
  EXPECT_TRUE(g.HasLink(0, 2));
  EXPECT_TRUE(g.HasLink(2, 0));
  EXPECT_FALSE(g.FindLink(0, 0).has_value());
  SwitchGraph h(4, 1);
  h.AddLink(0, 1);
  EXPECT_FALSE(h.HasLink(2, 3));
}

TEST(SwitchGraph, Connectivity) {
  EXPECT_TRUE(Triangle().IsConnected());
  SwitchGraph g(4, 1);
  g.AddLink(0, 1);
  g.AddLink(2, 3);
  EXPECT_FALSE(g.IsConnected());
  g.AddLink(1, 2);
  EXPECT_TRUE(g.IsConnected());
}

TEST(SwitchGraph, BfsDistances) {
  SwitchGraph g(5, 1);  // path 0-1-2-3-4
  for (std::size_t i = 0; i + 1 < 5; ++i) g.AddLink(i, i + 1);
  const auto dist = g.BfsDistances(0);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(dist[i], i);
  }
}

TEST(SwitchGraph, BfsUnreachableIsMax) {
  SwitchGraph g(3, 1);
  g.AddLink(0, 1);
  const auto dist = g.BfsDistances(0);
  EXPECT_EQ(dist[2], static_cast<std::size_t>(-1));
}

TEST(SwitchGraph, AllPairsHopDistanceSymmetric) {
  const SwitchGraph g = Triangle();
  const auto d = g.AllPairsHopDistance();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(d[i][i], 0u);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(d[i][j], d[j][i]);
    }
  }
  EXPECT_EQ(d[0][1], 1u);
}

TEST(SwitchGraph, HostNumbering) {
  const SwitchGraph g = Triangle();  // 4 hosts per switch
  EXPECT_EQ(g.SwitchOfHost(0), 0u);
  EXPECT_EQ(g.SwitchOfHost(3), 0u);
  EXPECT_EQ(g.SwitchOfHost(4), 1u);
  EXPECT_EQ(g.SwitchOfHost(11), 2u);
  EXPECT_EQ(g.FirstHostOfSwitch(2), 8u);
  EXPECT_THROW((void)g.SwitchOfHost(12), ContractError);
}

TEST(SwitchGraph, ZeroHostGraphHostQueriesFail) {
  SwitchGraph g(2, 0);
  g.AddLink(0, 1);
  EXPECT_EQ(g.host_count(), 0u);
  EXPECT_THROW((void)g.SwitchOfHost(0), ContractError);
}

TEST(SwitchGraph, SingleSwitchIsConnected) {
  SwitchGraph g(1, 4);
  EXPECT_TRUE(g.IsConnected());
}

}  // namespace
}  // namespace commsched::topo
