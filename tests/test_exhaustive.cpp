#include "sched/exhaustive.h"

#include <gtest/gtest.h>

#include "distance/distance_table.h"
#include "routing/updown.h"
#include "topology/generator.h"

namespace commsched::sched {
namespace {

DistanceTable SmallTable(std::size_t switches, std::uint64_t seed) {
  topo::IrregularTopologyOptions options;
  options.switch_count = switches;
  options.seed = seed;
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const route::UpDownRouting routing(g);
  return DistanceTable::Build(routing);
}

TEST(CountPartitions, KnownValues) {
  EXPECT_EQ(CountPartitions({2, 2}), 3u);         // 4!/(2!2!2!) = 3
  EXPECT_EQ(CountPartitions({2, 2, 2, 2}), 105u); // 8!/(2!^4 4!)
  EXPECT_EQ(CountPartitions({4, 4, 4, 4}), 2627625u);  // the paper's 16-switch space
  EXPECT_EQ(CountPartitions({3, 1}), 4u);          // C(4,3)
  EXPECT_EQ(CountPartitions({1, 1, 1}), 1u);       // all singletons, unlabeled
  EXPECT_EQ(CountPartitions({5}), 1u);
}

TEST(CountPartitions, MixedMultiplicities) {
  // 6 into sizes {2,2,1,1}: 6!/(2!2!1!1!) / (2! * 2!) = 180/4 = 45.
  EXPECT_EQ(CountPartitions({2, 2, 1, 1}), 45u);
}

TEST(Exhaustive, VisitsExactlyTheUnlabeledSpaceWithoutPruning) {
  const DistanceTable t = SmallTable(8, 1);
  ExhaustiveOptions options;
  options.prune = false;
  const SearchResult result = ExhaustiveSearch(t, {2, 2, 2, 2}, options);
  EXPECT_EQ(result.evaluations, CountPartitions({2, 2, 2, 2}));
}

TEST(Exhaustive, PruningPreservesTheOptimum) {
  const DistanceTable t = SmallTable(10, 2);
  ExhaustiveOptions pruned;
  pruned.prune = true;
  ExhaustiveOptions full;
  full.prune = false;
  const SearchResult a = ExhaustiveSearch(t, {5, 5}, pruned);
  const SearchResult b = ExhaustiveSearch(t, {5, 5}, full);
  EXPECT_NEAR(a.best_fg, b.best_fg, 1e-12);
  EXPECT_TRUE(a.best.SameGrouping(b.best));
  EXPECT_LE(a.evaluations, b.evaluations);
}

TEST(Exhaustive, FindsObviousOptimum) {
  DistanceTable t(6, 10.0);
  t.Set(0, 1, 1.0);
  t.Set(0, 2, 1.0);
  t.Set(1, 2, 1.0);
  t.Set(3, 4, 1.0);
  t.Set(3, 5, 1.0);
  t.Set(4, 5, 1.0);
  const SearchResult result = ExhaustiveSearch(t, {3, 3});
  EXPECT_TRUE(result.best.SameGrouping(qual::Partition({0, 0, 0, 1, 1, 1})));
}

TEST(Exhaustive, UnequalClusterSizes) {
  const DistanceTable t = SmallTable(8, 3);
  const SearchResult result = ExhaustiveSearch(t, {6, 2});
  EXPECT_EQ(result.best.ClusterSize(0), 6u);
  EXPECT_EQ(result.best.ClusterSize(1), 2u);
}

TEST(Exhaustive, SizesMustCoverSwitches) {
  const DistanceTable t = SmallTable(8, 1);
  EXPECT_THROW((void)ExhaustiveSearch(t, {4, 2}), commsched::ContractError);
  EXPECT_THROW((void)ExhaustiveSearch(t, {4, 4, 4}), commsched::ContractError);
}

TEST(Exhaustive, LeafLimitEnforced) {
  const DistanceTable t = SmallTable(12, 1);
  ExhaustiveOptions options;
  options.prune = false;
  options.max_leaves = 10;
  EXPECT_THROW((void)ExhaustiveSearch(t, {3, 3, 3, 3}, options), commsched::ContractError);
}

}  // namespace
}  // namespace commsched::sched
