// Application-intensity weighting: F_G^λ and the measure → schedule loop.
#include <gtest/gtest.h>

#include "quality/quality.h"
#include "quality/weighted.h"
#include "routing/updown.h"
#include "sched/tabu.h"
#include "sched/weighted_tabu.h"
#include "simnet/estimate.h"
#include "topology/generator.h"

namespace commsched {
namespace {

dist::DistanceTable PaperTable(std::size_t switches, std::uint64_t seed,
                               topo::SwitchGraph* out_graph = nullptr) {
  topo::IrregularTopologyOptions options;
  options.switch_count = switches;
  options.seed = seed;
  topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const route::UpDownRouting routing(g);
  auto table = dist::DistanceTable::Build(routing);
  if (out_graph) *out_graph = std::move(g);
  return table;
}

TEST(Intensity, EqualIntensitiesReduceToFg) {
  const dist::DistanceTable t = PaperTable(12, 3);
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const qual::Partition p = qual::Partition::Random({3, 3, 3, 3}, rng);
    EXPECT_NEAR(qual::IntensityGlobalSimilarity(t, p, {2.0, 2.0, 2.0, 2.0}),
                qual::GlobalSimilarity(t, p), 1e-9);
  }
}

TEST(Intensity, HotClusterDominatesTheScore) {
  // Two clusters, one tight and one loose; putting the hot application on
  // the tight one scores better.
  dist::DistanceTable t(4, 0.0);
  t.Set(0, 1, 1.0);   // tight pair
  t.Set(2, 3, 5.0);   // loose pair
  t.Set(0, 2, 3.0);
  t.Set(0, 3, 3.0);
  t.Set(1, 2, 3.0);
  t.Set(1, 3, 3.0);
  const qual::Partition hot_on_tight({0, 0, 1, 1});
  const qual::Partition hot_on_loose({1, 1, 0, 0});
  const std::vector<double> intensity{10.0, 1.0};  // app 0 is hot
  EXPECT_LT(qual::IntensityGlobalSimilarity(t, hot_on_tight, intensity),
            qual::IntensityGlobalSimilarity(t, hot_on_loose, intensity));
  // Unweighted F_G cannot tell the two apart (same grouping).
  EXPECT_NEAR(qual::GlobalSimilarity(t, hot_on_tight),
              qual::GlobalSimilarity(t, hot_on_loose), 1e-12);
}

TEST(Intensity, EvaluatorMatchesDirect) {
  const dist::DistanceTable t = PaperTable(12, 5);
  Rng rng(7);
  const std::vector<double> intensity{4.0, 1.0, 0.5, 2.0};
  qual::Partition p = qual::Partition::Random({3, 3, 3, 3}, rng);
  qual::IntensitySwapEvaluator eval(t, p, intensity);
  EXPECT_NEAR(eval.Fg(), qual::IntensityGlobalSimilarity(t, p, intensity), 1e-9);
  for (int trial = 0; trial < 40; ++trial) {
    std::size_t a = 0;
    std::size_t b = 0;
    do {
      a = static_cast<std::size_t>(rng.NextIndex(12));
      b = static_cast<std::size_t>(rng.NextIndex(12));
    } while (eval.partition().ClusterOf(a) == eval.partition().ClusterOf(b));
    qual::Partition swapped = eval.partition();
    swapped.Swap(a, b);
    EXPECT_NEAR(eval.FgAfterDelta(eval.SwapDelta(a, b)),
                qual::IntensityGlobalSimilarity(t, swapped, intensity), 1e-9);
    eval.ApplySwap(a, b);
    EXPECT_NEAR(eval.Fg(), qual::IntensityGlobalSimilarity(t, swapped, intensity), 1e-9);
  }
}

TEST(Intensity, ValidationErrors) {
  const dist::DistanceTable t = PaperTable(8, 1);
  const qual::Partition p = qual::Partition::Blocked({4, 4});
  EXPECT_THROW((void)qual::IntensityGlobalSimilarity(t, p, {1.0}), ContractError);
  EXPECT_THROW((void)qual::IntensityGlobalSimilarity(t, p, {-1.0, 1.0}), ContractError);
  EXPECT_THROW((void)qual::IntensityGlobalSimilarity(t, p, {0.0, 0.0}), ContractError);
}

TEST(IntensityTabu, EqualIntensitiesMatchPlainTabu) {
  const dist::DistanceTable t = PaperTable(16, 1);
  sched::TabuOptions options;
  options.rng_seed = 3;
  const auto weighted =
      sched::IntensityTabuSearch(t, {4, 4, 4, 4}, {1.0, 1.0, 1.0, 1.0}, options);
  const auto plain = sched::TabuSearch(t, {4, 4, 4, 4}, options);
  EXPECT_NEAR(weighted.best_fg, plain.best_fg, 1e-9);
}

TEST(IntensityTabu, HotAppGetsTheTightestCluster) {
  const dist::DistanceTable t = PaperTable(16, 1);
  const std::vector<double> intensity{8.0, 1.0, 1.0, 1.0};
  sched::TabuOptions options;
  const auto result = sched::IntensityTabuSearch(t, {4, 4, 4, 4}, intensity, options);
  // Cluster 0 (the hot application) has the smallest mean intra distance of
  // the four clusters in the chosen mapping.
  double hot = qual::ClusterSimilarity(t, result.best, 0);
  for (std::size_t c = 1; c < 4; ++c) {
    EXPECT_LE(hot, qual::ClusterSimilarity(t, result.best, c) + 1e-9);
  }
  // And its weighted score beats the plain mapping's weighted score.
  const auto plain = sched::TabuSearch(t, {4, 4, 4, 4}, options);
  EXPECT_LE(result.best_fg,
            qual::IntensityGlobalSimilarity(t, plain.best, intensity) + 1e-9);
}

TEST(IntensityEstimate, RecoversWorkloadWeights) {
  topo::SwitchGraph graph(1, 1);
  const dist::DistanceTable table = PaperTable(16, 1, &graph);
  const route::UpDownRouting routing(graph);
  std::vector<work::ApplicationSpec> apps = work::Workload::Uniform(4, 16).applications();
  apps[0].traffic_weight = 6.0;
  const work::Workload workload(apps);
  Rng rng(5);
  const auto mapping = work::ProcessMapping::RandomAligned(graph, workload, rng);
  const sim::TrafficPattern pattern(graph, workload, mapping);
  sim::SimConfig config;
  config.warmup_cycles = 2000;
  config.measure_cycles = 20000;
  config.collect_traffic_matrix = true;
  sim::NetworkSimulator simulator(graph, routing, pattern, config);
  const sim::SimMetrics metrics = simulator.Run(0.15);
  const auto intensity = sim::EstimateAppIntensities(metrics.switch_pair_flit_rate,
                                                     mapping.InducedPartition(graph));
  ASSERT_EQ(intensity.size(), 4u);
  // App 0 should be measured ~6x hotter than the others.
  EXPECT_GT(intensity[0], 3.0 * intensity[1]);
  EXPECT_NEAR(intensity[1], intensity[2], 0.25);
}

}  // namespace
}  // namespace commsched
