#include "stats/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"

namespace commsched::stats {
namespace {

TEST(Stats, PerfectPositiveCorrelation) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(Stats, PerfectNegativeCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(Stats, KnownCorrelationValue) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{1, 3, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.5, 1e-12);
}

TEST(Stats, CorrelationValidation) {
  const std::vector<double> x{1, 2};
  const std::vector<double> y{1, 2};
  EXPECT_THROW((void)PearsonCorrelation(x, y), ContractError);  // too short
  const std::vector<double> c{3, 3, 3};
  const std::vector<double> v{1, 2, 3};
  EXPECT_THROW((void)PearsonCorrelation(c, v), ContractError);  // degenerate
  const std::vector<double> mismatched{1, 2, 3, 4};
  EXPECT_THROW((void)PearsonCorrelation(v, mismatched), ContractError);
}

TEST(Stats, FitLineRecoversExactLine) {
  const std::vector<double> x{0, 1, 2, 3};
  const std::vector<double> y{5, 7, 9, 11};  // y = 5 + 2x
  const LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, FitLineNoisy) {
  const std::vector<double> x{0, 1, 2, 3, 4};
  const std::vector<double> y{0.1, 0.9, 2.1, 2.9, 4.1};
  const LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 1.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(Stats, SummaryBasics) {
  const std::vector<double> v{4, 1, 3, 2};
  const Summary s = Summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_NEAR(s.mean, 2.5, 1e-12);
  EXPECT_NEAR(s.min, 1.0, 1e-12);
  EXPECT_NEAR(s.max, 4.0, 1e-12);
  EXPECT_NEAR(s.median, 2.5, 1e-12);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, SummaryOddMedianAndSingleton) {
  EXPECT_NEAR(Summarize(std::vector<double>{3, 1, 2}).median, 2.0, 1e-12);
  const Summary s = Summarize(std::vector<double>{7});
  EXPECT_NEAR(s.median, 7.0, 1e-12);
  EXPECT_NEAR(s.stddev, 0.0, 1e-12);
}

TEST(Stats, SummarizeEmptyThrows) {
  EXPECT_THROW((void)Summarize(std::vector<double>{}), ContractError);
}

TEST(Stats, SpearmanMonotoneNonlinear) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{1, 8, 27, 64, 125};  // monotone, nonlinear
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(x, y), 1.0);
}

TEST(Stats, SpearmanHandlesTies) {
  const std::vector<double> x{1, 2, 2, 3};
  const std::vector<double> y{10, 20, 20, 30};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

}  // namespace
}  // namespace commsched::stats
