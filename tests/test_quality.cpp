#include "quality/quality.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "distance/distance_table.h"
#include "routing/updown.h"
#include "topology/generator.h"

namespace commsched::qual {
namespace {

/// 4 switches, two tight pairs (0,1) and (2,3) far from each other.
DistanceTable TwoIslandsTable() {
  DistanceTable t(4, 0.0);
  t.Set(0, 1, 1.0);
  t.Set(2, 3, 1.0);
  t.Set(0, 2, 10.0);
  t.Set(0, 3, 10.0);
  t.Set(1, 2, 10.0);
  t.Set(1, 3, 10.0);
  return t;
}

TEST(Quality, ClusterSimilarityMatchesEquationOne) {
  const DistanceTable t = TwoIslandsTable();
  const Partition good({0, 0, 1, 1});
  EXPECT_NEAR(ClusterSimilarity(t, good, 0), 1.0, 1e-12);  // T(0,1)^2
  const Partition bad({0, 1, 0, 1});
  EXPECT_NEAR(ClusterSimilarity(t, bad, 0), 100.0, 1e-12);  // T(0,2)^2
}

TEST(Quality, ClusterDissimilarityMatchesEquationFour) {
  const DistanceTable t = TwoIslandsTable();
  const Partition good({0, 0, 1, 1});
  // D_A0 = T(0,2)^2 + T(0,3)^2 + T(1,2)^2 + T(1,3)^2 = 400.
  EXPECT_NEAR(ClusterDissimilarity(t, good, 0), 400.0, 1e-12);
}

TEST(Quality, GlobalFunctionsOnIslands) {
  const DistanceTable t = TwoIslandsTable();
  const double msd = t.MeanSquaredDistance();  // (1+1+4*100)/6 = 67
  EXPECT_NEAR(msd, 67.0, 1e-12);

  const Partition good({0, 0, 1, 1});
  // F_G = ((1+1)/2)/67
  EXPECT_NEAR(GlobalSimilarity(t, good), 1.0 / 67.0, 1e-12);
  // D_G = (2*400 / (2*(2*2)+... sum x_i(N-x_i)=2*2+2*2=8)) / 67 = 100/67
  EXPECT_NEAR(GlobalDissimilarity(t, good), 100.0 / 67.0, 1e-12);
  EXPECT_NEAR(ClusteringCoefficient(t, good), 100.0, 1e-12);

  const Partition bad({0, 1, 0, 1});
  EXPECT_NEAR(GlobalSimilarity(t, bad), 100.0 / 67.0, 1e-12);
  EXPECT_GT(ClusteringCoefficient(t, good), ClusteringCoefficient(t, bad));
}

TEST(Quality, UniformTableGivesUnitCoefficients) {
  // All distances equal: every mapping is as good as random; F_G = D_G = 1.
  const DistanceTable t(8, 3.0);
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const Partition p = Partition::Random({2, 2, 2, 2}, rng);
    EXPECT_NEAR(GlobalSimilarity(t, p), 1.0, 1e-12);
    EXPECT_NEAR(GlobalDissimilarity(t, p), 1.0, 1e-12);
    EXPECT_NEAR(ClusteringCoefficient(t, p), 1.0, 1e-12);
  }
}

TEST(Quality, ExpectedFgOverRandomMappingsIsAboutOne) {
  // The paper: "a value of F_G greater than 1 means worse than mapping
  // randomly" — so the random-mapping average must be ~1.
  topo::IrregularTopologyOptions options;
  options.switch_count = 16;
  options.seed = 8;
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const route::UpDownRouting routing(g);
  const DistanceTable t = dist::DistanceTable::Build(routing);
  Rng rng(17);
  double sum = 0.0;
  const int trials = 400;
  for (int k = 0; k < trials; ++k) {
    sum += GlobalSimilarity(t, Partition::Random({4, 4, 4, 4}, rng));
  }
  EXPECT_NEAR(sum / trials, 1.0, 0.05);
}

TEST(Quality, RequiresMatchingSizes) {
  const DistanceTable t(4, 1.0);
  const Partition p({0, 0, 1, 1, 1});
  EXPECT_THROW((void)GlobalSimilarity(t, p), ContractError);
}

TEST(Quality, SingletonClustersRejectedForFg) {
  const DistanceTable t(3, 1.0);
  const Partition p({0, 1, 2});
  EXPECT_THROW((void)GlobalSimilarity(t, p), ContractError);
}

TEST(Quality, SingleClusterRejectedForDg) {
  const DistanceTable t(3, 1.0);
  const Partition p({0, 0, 0});
  EXPECT_THROW((void)GlobalDissimilarity(t, p), ContractError);
}

// ---- SwapEvaluator ---------------------------------------------------------

TEST(SwapEvaluator, MatchesDirectComputation) {
  const DistanceTable t = TwoIslandsTable();
  const Partition p({0, 1, 0, 1});
  SwapEvaluator eval(t, p);
  EXPECT_NEAR(eval.Fg(), GlobalSimilarity(t, p), 1e-12);
  EXPECT_NEAR(eval.Dg(), GlobalDissimilarity(t, p), 1e-12);
  EXPECT_NEAR(eval.Cc(), ClusteringCoefficient(t, p), 1e-12);
}

TEST(SwapEvaluator, SwapDeltaMatchesRecompute) {
  topo::IrregularTopologyOptions options;
  options.switch_count = 12;
  options.seed = 5;
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const route::UpDownRouting routing(g);
  const DistanceTable t = dist::DistanceTable::Build(routing);
  Rng rng(77);
  Partition p = Partition::Random({3, 3, 3, 3}, rng);
  SwapEvaluator eval(t, p);

  for (int trial = 0; trial < 50; ++trial) {
    // Random inter-cluster pair.
    std::size_t a = 0;
    std::size_t b = 0;
    do {
      a = static_cast<std::size_t>(rng.NextIndex(12));
      b = static_cast<std::size_t>(rng.NextIndex(12));
    } while (eval.partition().ClusterOf(a) == eval.partition().ClusterOf(b));

    const double delta = eval.SwapDelta(a, b);
    Partition swapped = eval.partition();
    swapped.Swap(a, b);
    const double fg_direct = GlobalSimilarity(t, swapped);
    EXPECT_NEAR(eval.FgAfterDelta(delta), fg_direct, 1e-9);

    eval.ApplySwap(a, b);
    EXPECT_NEAR(eval.Fg(), fg_direct, 1e-9);
    EXPECT_NEAR(eval.Dg(), GlobalDissimilarity(t, swapped), 1e-9);
  }
}

TEST(SwapEvaluator, SwapDeltaSameClusterRejected) {
  const DistanceTable t = TwoIslandsTable();
  SwapEvaluator eval(t, Partition({0, 0, 1, 1}));
  EXPECT_THROW((void)eval.SwapDelta(0, 1), ContractError);
}

TEST(SwapEvaluator, SwapIsAnInvolutionOnFg) {
  const DistanceTable t = TwoIslandsTable();
  SwapEvaluator eval(t, Partition({0, 1, 0, 1}));
  const double before = eval.Fg();
  eval.ApplySwap(1, 2);
  eval.ApplySwap(1, 2);
  EXPECT_NEAR(eval.Fg(), before, 1e-12);
}

TEST(SwapEvaluator, ResetRecomputes) {
  const DistanceTable t = TwoIslandsTable();
  SwapEvaluator eval(t, Partition({0, 1, 0, 1}));
  eval.Reset(Partition({0, 0, 1, 1}));
  EXPECT_NEAR(eval.Fg(), 1.0 / 67.0, 1e-12);
}

TEST(SwapEvaluator, DgDerivedIdentityHolds) {
  // sum of ordered intercluster = 2*(all - intra): check against the direct
  // D_G for a lopsided partition (sizes 1 and 3 -> singleton contributes no
  // intra terms).
  DistanceTable t(4, 0.0);
  t.Set(0, 1, 2.0);
  t.Set(0, 2, 3.0);
  t.Set(0, 3, 1.0);
  t.Set(1, 2, 4.0);
  t.Set(1, 3, 5.0);
  t.Set(2, 3, 6.0);
  const Partition p({0, 0, 0, 1});
  SwapEvaluator eval(t, p);
  EXPECT_NEAR(eval.Dg(), GlobalDissimilarity(t, p), 1e-12);
  EXPECT_NEAR(eval.Fg(), GlobalSimilarity(t, p), 1e-12);
}

}  // namespace
}  // namespace commsched::qual
