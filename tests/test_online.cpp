#include "sched/online.h"

#include "quality/quality.h"
#include "sched/tabu.h"

#include <gtest/gtest.h>

#include "routing/updown.h"
#include "topology/generator.h"
#include "topology/library.h"

namespace commsched::sched {
namespace {

struct Fixture {
  topo::SwitchGraph graph;
  route::UpDownRouting routing;
  dist::DistanceTable table;

  explicit Fixture(topo::SwitchGraph g)
      : graph(std::move(g)), routing(graph), table(dist::DistanceTable::Build(routing)) {}
};

Fixture Rings() { return Fixture(topo::MakeFourRingsOfSix()); }

TEST(Online, AllocateAndReleaseBookkeeping) {
  Fixture f = Rings();
  OnlineScheduler scheduler(f.graph, f.table);
  EXPECT_EQ(scheduler.FreeSwitchCount(), 24u);
  const auto a = scheduler.Allocate("a", 6);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->size(), 6u);
  EXPECT_EQ(scheduler.FreeSwitchCount(), 18u);
  EXPECT_EQ(scheduler.allocations().size(), 1u);
  scheduler.Release("a");
  EXPECT_EQ(scheduler.FreeSwitchCount(), 24u);
  EXPECT_TRUE(scheduler.allocations().empty());
}

TEST(Online, FirstAllocationAtLeastAsTightAsAnyRing) {
  // Note: under up*/down* routing, a 6-set crossing a ring bridge can beat
  // a whole ring (intra-ring pairs get detoured through the spanning tree),
  // so we assert cost-optimality against the rings, not ring identity.
  Fixture f = Rings();
  OnlineScheduler scheduler(f.graph, f.table);
  const auto a = scheduler.Allocate("a", 6);
  ASSERT_TRUE(a.has_value());
  const double cost = scheduler.AllocationCost("a");
  for (std::size_t ring = 0; ring < 4; ++ring) {
    double ring_cost = 0.0;
    for (std::size_t i = 0; i < 6; ++i) {
      for (std::size_t j = i + 1; j < 6; ++j) {
        const double d = f.table(6 * ring + i, 6 * ring + j);
        ring_cost += d * d;
      }
    }
    EXPECT_LE(cost, ring_cost / 15.0 + 1e-9) << "ring " << ring;
  }
}

TEST(Online, SequentialAllocationsAreDisjointAndGreedyPaysAtTheEnd) {
  Fixture f = Rings();
  OnlineScheduler scheduler(f.graph, f.table);
  std::vector<bool> taken(24, false);
  std::vector<double> costs;
  for (const char* name : {"a", "b", "c", "d"}) {
    const auto alloc = scheduler.Allocate(name, 6);
    ASSERT_TRUE(alloc.has_value());
    for (std::size_t s : *alloc) {
      EXPECT_FALSE(taken[s]) << "switch " << s << " double-allocated";
      taken[s] = true;
    }
    costs.push_back(scheduler.AllocationCost(name));
  }
  EXPECT_EQ(scheduler.FreeSwitchCount(), 0u);
  // Greedy sequences leave the stragglers a poor set: the last allocation
  // costs at least as much as the first.
  EXPECT_GE(costs.back(), costs.front() - 1e-9);
  // And a global (Tabu) partition of the same shape achieves a total intra
  // cost no worse than the greedy sequence's total.
  const sched::SearchResult global = sched::TabuSearch(f.table, {6, 6, 6, 6});
  double greedy_total = 0.0;
  for (double c : costs) greedy_total += c * 15.0;  // back to raw sums
  double global_total = 0.0;
  for (std::size_t c = 0; c < 4; ++c) {
    global_total += qual::ClusterSimilarity(f.table, global.best, c);
  }
  EXPECT_LE(global_total, greedy_total + 1e-9);
}

TEST(Online, OverCapacityReturnsNullopt) {
  Fixture f = Rings();
  OnlineScheduler scheduler(f.graph, f.table);
  ASSERT_TRUE(scheduler.Allocate("big", 20).has_value());
  EXPECT_FALSE(scheduler.Allocate("late", 6).has_value());
  EXPECT_TRUE(scheduler.Allocate("small", 4).has_value());
}

TEST(Online, DuplicateNameAndUnknownReleaseRejected) {
  Fixture f = Rings();
  OnlineScheduler scheduler(f.graph, f.table);
  ASSERT_TRUE(scheduler.Allocate("a", 4).has_value());
  EXPECT_THROW((void)scheduler.Allocate("a", 4), ContractError);
  EXPECT_THROW(scheduler.Release("ghost"), ContractError);
}

TEST(Online, ReleasedSlotsAreReusedContiguously) {
  Fixture f = Rings();
  OnlineScheduler scheduler(f.graph, f.table);
  for (const char* name : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(scheduler.Allocate(name, 6).has_value());
  }
  const auto b_slots = scheduler.allocations().at("b");
  scheduler.Release("b");
  const auto e = scheduler.Allocate("e", 6);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, b_slots);  // the freed ring is the only (and best) option
}

TEST(Online, FragmentationIndexTracksQuality) {
  Fixture f = Rings();
  OnlineScheduler scheduler(f.graph, f.table);
  ASSERT_TRUE(scheduler.Allocate("a", 6).has_value());
  const double tight = scheduler.FragmentationIndex();
  EXPECT_GT(tight, 0.0);
  EXPECT_LT(tight, 1.0);  // far tighter than random
  // Fill the rest, release two non-adjacent rings' worth in pieces to force
  // a fragmented allocation.
  ASSERT_TRUE(scheduler.Allocate("b", 6).has_value());
  ASSERT_TRUE(scheduler.Allocate("c", 6).has_value());
  ASSERT_TRUE(scheduler.Allocate("d", 6).has_value());
  scheduler.Release("a");
  scheduler.Release("c");
  // A 12-switch allocation must span two rings: cost rises.
  ASSERT_TRUE(scheduler.Allocate("wide", 12).has_value());
  EXPECT_GT(scheduler.FragmentationIndex(), tight);
}

TEST(Online, SingleSwitchAllocationsHaveZeroCost) {
  Fixture f = Rings();
  OnlineScheduler scheduler(f.graph, f.table);
  ASSERT_TRUE(scheduler.Allocate("solo", 1).has_value());
  EXPECT_DOUBLE_EQ(scheduler.AllocationCost("solo"), 0.0);
  EXPECT_DOUBLE_EQ(scheduler.FragmentationIndex(), 0.0);
}

TEST(Online, SnapshotPartitionCoversEverything) {
  Fixture f = Rings();
  OnlineScheduler scheduler(f.graph, f.table);
  ASSERT_TRUE(scheduler.Allocate("a", 6).has_value());
  ASSERT_TRUE(scheduler.Allocate("b", 10).has_value());
  std::vector<std::string> names;
  const qual::Partition p = scheduler.SnapshotPartition(&names);
  EXPECT_EQ(p.switch_count(), 24u);
  ASSERT_EQ(names.size(), 3u);  // a, b, idle
  EXPECT_EQ(names.back(), "<idle>");
  EXPECT_EQ(p.ClusterSize(0), 6u);
  EXPECT_EQ(p.ClusterSize(1), 10u);
  EXPECT_EQ(p.ClusterSize(2), 8u);
}

TEST(Online, SnapshotWithoutFreeSwitchesHasNoIdleCluster) {
  Fixture f = Rings();
  OnlineScheduler scheduler(f.graph, f.table);
  for (const char* name : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(scheduler.Allocate(name, 6).has_value());
  }
  std::vector<std::string> names;
  const qual::Partition p = scheduler.SnapshotPartition(&names);
  EXPECT_EQ(p.cluster_count(), 4u);
  EXPECT_EQ(names.size(), 4u);
}

}  // namespace
}  // namespace commsched::sched
