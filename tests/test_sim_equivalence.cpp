// ISSUE 6 headline: differential testing of the two execution engines.
//
// The event engine deliberately diverges from the cycle engine in
// arbitration *visit order* (round-robin pointers advance per visit, not per
// cycle), so per-run outputs are statistically — not bitwise — equivalent.
// Golden-value comparison is therefore impossible; instead:
//   * statistical equivalence: both engines across many seeds, latency and
//     throughput compared with Welch CIs and a KS bound (tests/stat_util.h);
//   * exact equivalence where determinism is guaranteed: arrival schedules
//     are shared (simnet/arrivals.h), so fault counters whose value depends
//     only on the arrival schedule must match exactly — checked by replaying
//     the fault plans under tests/data through both engines;
//   * termination agreement: for drained (non-deadlocked) runs both engines
//     stop at the same cycle, and both watchdogs fire on true deadlocks.
#include "stat_util.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "faults/fault_plan.h"
#include "routing/shortest_path.h"
#include "routing/updown.h"
#include "simnet/simulator.h"
#include "topology/generator.h"
#include "topology/library.h"

#ifndef COMMSCHED_TEST_DATA_DIR
#define COMMSCHED_TEST_DATA_DIR "tests/data"
#endif

namespace commsched::sim {
namespace {

using ::commsched::testing::DistributionsEquivalent;
using ::commsched::testing::MeansEquivalent;

struct Fixture {
  topo::SwitchGraph graph;
  route::UpDownRouting routing;
  work::Workload workload;
  work::ProcessMapping mapping;
  TrafficPattern pattern;

  explicit Fixture(topo::SwitchGraph g, std::uint64_t seed = 1)
      : graph(std::move(g)),
        routing(graph),
        workload(work::Workload::Uniform(4, graph.host_count() / 4)),
        mapping(MakeMapping(graph, workload, seed)),
        pattern(graph, workload, mapping) {}

  static work::ProcessMapping MakeMapping(const topo::SwitchGraph& g,
                                          const work::Workload& w, std::uint64_t seed) {
    Rng rng(seed);
    return work::ProcessMapping::RandomAligned(g, w, rng);
  }
};

SimConfig HarnessConfig(ExecMode mode, std::uint64_t seed) {
  SimConfig config;
  config.exec_mode = mode;
  config.warmup_cycles = 800;
  config.measure_cycles = 2500;
  config.rng_seed = seed;
  return config;
}

struct SeedSamples {
  std::vector<double> latency;
  std::vector<double> accepted;
};

SeedSamples RunSeeds(const Fixture& f, ExecMode mode, double rate, std::size_t seeds) {
  SeedSamples out;
  for (std::uint64_t s = 1; s <= seeds; ++s) {
    NetworkSimulator sim(f.graph, f.routing, f.pattern, HarnessConfig(mode, s));
    const SimMetrics m = sim.Run(rate);
    out.latency.push_back(m.avg_latency_cycles);
    out.accepted.push_back(m.accepted_flits_per_switch_cycle);
  }
  return out;
}

/// The statistical-equivalence contract (DESIGN.md §11): across seeds, both
/// engines' per-seed mean latencies and accepted rates must agree in a
/// Welch CI (alpha = 0.01, small application margin for genuine arbitration
/// divergence) and pass the KS bound as whole distributions.
void ExpectStatisticallyEquivalent(const Fixture& f, double rate, std::size_t seeds) {
  const SeedSamples cycle = RunSeeds(f, ExecMode::kCycle, rate, seeds);
  const SeedSamples event = RunSeeds(f, ExecMode::kEvent, rate, seeds);

  const double mean_latency =
      ::commsched::testing::Summarize(cycle.latency).mean;
  EXPECT_TRUE(MeansEquivalent(cycle.latency, event.latency, 0.01,
                              std::max(1.0, 0.02 * mean_latency)))
      << "mean latency diverged at rate " << rate;
  EXPECT_TRUE(MeansEquivalent(cycle.accepted, event.accepted, 0.01,
                              std::max(0.002, 0.02 * rate)))
      << "accepted traffic diverged at rate " << rate;
  // Whole-distribution agreement over the per-seed samples; margin 0.1 CDF
  // units on top of the KS bound keeps false positives negligible at this
  // sample size without masking a real shift.
  EXPECT_TRUE(DistributionsEquivalent(cycle.latency, event.latency, 0.01, 0.1))
      << "latency distribution diverged at rate " << rate;
  EXPECT_TRUE(DistributionsEquivalent(cycle.accepted, event.accepted, 0.01, 0.1))
      << "accepted distribution diverged at rate " << rate;
}

TEST(SimEquivalence, IrregularTopologyLowLoad) {
  const Fixture f(topo::GenerateIrregularTopology({16, 4, 3, 1, 1000}));
  ExpectStatisticallyEquivalent(f, 0.08, 24);
}

TEST(SimEquivalence, IrregularTopologyModerateLoad) {
  const Fixture f(topo::GenerateIrregularTopology({16, 4, 3, 1, 1000}));
  ExpectStatisticallyEquivalent(f, 0.45, 24);
}

TEST(SimEquivalence, RingsTopologyLowLoad) {
  const Fixture f(topo::MakeFourRingsOfSix());
  ExpectStatisticallyEquivalent(f, 0.08, 24);
}

TEST(SimEquivalence, RingsTopologyModerateLoad) {
  const Fixture f(topo::MakeFourRingsOfSix());
  ExpectStatisticallyEquivalent(f, 0.45, 24);
}

// ---- exact differential replay of checked-in fault plans -----------------

std::string ReadDataFile(const std::string& name) {
  const std::string path = std::string(COMMSCHED_TEST_DATA_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing test data file " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct FaultOutcome {
  SimMetrics metrics;
  SimTotals totals;
};

FaultOutcome ReplayPlan(const Fixture& f, const faults::FaultPlan& plan, ExecMode mode,
                        double rate) {
  SimConfig config;
  config.exec_mode = mode;
  config.warmup_cycles = 1200;
  config.measure_cycles = 3000;
  config.fault_plan = &plan;
  NetworkSimulator sim(f.graph, f.routing, f.pattern, config);
  FaultOutcome outcome;
  outcome.metrics = sim.Run(rate);
  outcome.totals = sim.Totals();
  return outcome;
}

// A switch dies at cycle 1, before anything is in flight: every lost
// message is determined by the shared arrival schedule alone (queued
// messages to the dead switch at fault time + born-dead arrivals after),
// so both engines must report identical losses — not just similar ones.
TEST(SimEquivalence, SwitchDownPlanMatchesExactly) {
  const Fixture f(topo::MakeFourRingsOfSix());
  const auto plan = faults::FaultPlan::FromJson(ReadDataFile("faultplan_diff_switch.json"));
  plan.ValidateFor(f.graph);
  const FaultOutcome cycle = ReplayPlan(f, plan, ExecMode::kCycle, 0.25);
  const FaultOutcome event = ReplayPlan(f, plan, ExecMode::kEvent, 0.25);

  EXPECT_EQ(cycle.metrics.fault_events_applied, 1u);
  EXPECT_EQ(event.metrics.fault_events_applied, cycle.metrics.fault_events_applied);
  EXPECT_EQ(event.metrics.messages_lost, cycle.metrics.messages_lost);
  EXPECT_GT(cycle.metrics.messages_lost, 0u);  // the check must bite
  EXPECT_EQ(event.metrics.reconfig_cycles, cycle.metrics.reconfig_cycles);
  EXPECT_EQ(cycle.metrics.reconfig_cycles, 128u);  // default downtime window
  EXPECT_EQ(event.metrics.simulated_cycles, cycle.metrics.simulated_cycles);
  EXPECT_EQ(event.totals.messages_born_dead, cycle.totals.messages_born_dead);
  EXPECT_EQ(event.totals.messages_enqueued, cycle.totals.messages_enqueued);
}

// Two redundant ring links die at cycle 1: the surviving graph stays
// connected and nothing was in flight, so no engine may lose anything.
TEST(SimEquivalence, RedundantLinksPlanLosesNothingInBothModes) {
  const Fixture f(topo::MakeFourRingsOfSix());
  const auto plan = faults::FaultPlan::FromJson(ReadDataFile("faultplan_diff_links.json"));
  plan.ValidateFor(f.graph);
  const FaultOutcome cycle = ReplayPlan(f, plan, ExecMode::kCycle, 0.2);
  const FaultOutcome event = ReplayPlan(f, plan, ExecMode::kEvent, 0.2);

  for (const FaultOutcome* o : {&cycle, &event}) {
    EXPECT_EQ(o->metrics.fault_events_applied, 2u);
    EXPECT_EQ(o->metrics.messages_lost, 0u);
    EXPECT_EQ(o->metrics.dropped_flits, 0u);
    EXPECT_EQ(o->metrics.reconfig_cycles, 128u);
  }
  EXPECT_EQ(event.metrics.simulated_cycles, cycle.metrics.simulated_cycles);
  EXPECT_EQ(event.totals.messages_enqueued, cycle.totals.messages_enqueued);
}

// Mid-run faults hit a loaded network, so in-flight losses depend on
// arbitration order and may legitimately differ — but the event counters
// and the downtime accounting are still schedule-determined.
TEST(SimEquivalence, MidRunFaultCountersMatch) {
  const Fixture f(topo::MakeFourRingsOfSix());
  const auto plan = faults::FaultPlan::FromEvents(
      {{1500, faults::FaultKind::kLinkDown, 0, 1, 0},
       {2600, faults::FaultKind::kLinkUp, 0, 1, 0}});
  const FaultOutcome cycle = ReplayPlan(f, plan, ExecMode::kCycle, 0.2);
  const FaultOutcome event = ReplayPlan(f, plan, ExecMode::kEvent, 0.2);

  EXPECT_EQ(cycle.metrics.fault_events_applied, 2u);
  EXPECT_EQ(event.metrics.fault_events_applied, 2u);
  EXPECT_EQ(event.metrics.reconfig_cycles, cycle.metrics.reconfig_cycles);
  EXPECT_EQ(event.metrics.simulated_cycles, cycle.metrics.simulated_cycles);
}

// ---- termination agreement (idle-detection satellite) --------------------

// A drained run (no deadlock) terminates at warmup + measure in both
// engines: the event engine's skipped spans count as simulated cycles, and
// an emptied event queue must not stop the clock early.
TEST(SimEquivalence, DrainedRunsTerminateAtTheSameCycle) {
  const Fixture f(topo::GenerateIrregularTopology({16, 4, 3, 1, 1000}));
  for (const double rate : {0.0, 0.05, 0.4}) {
    SimMetrics by_mode[2];
    int i = 0;
    for (const ExecMode mode : {ExecMode::kCycle, ExecMode::kEvent}) {
      NetworkSimulator sim(f.graph, f.routing, f.pattern, HarnessConfig(mode, 3));
      by_mode[i++] = sim.Run(rate);
    }
    ASSERT_FALSE(by_mode[0].deadlock_detected);
    ASSERT_FALSE(by_mode[1].deadlock_detected);
    EXPECT_EQ(by_mode[0].simulated_cycles, 800u + 2500u) << "rate " << rate;
    EXPECT_EQ(by_mode[1].simulated_cycles, by_mode[0].simulated_cycles)
        << "engines disagree on the termination cycle at rate " << rate;
  }
}

// Shortest-path routing on a ring is not deadlock-free under wormhole with
// one virtual channel. Whether a full stall forms is arbitration-dependent
// (the engines arbitrate in different orders), so each mode must either
// detect deadlock or saturate — and a detected deadlock must stop the run
// early instead of grinding through the full horizon.
TEST(SimEquivalence, BothWatchdogsDetectRealDeadlock) {
  const auto graph = topo::MakeRing(6, 4);
  const route::ShortestPathRouting routing(graph);
  const auto workload = work::Workload::Uniform(2, 12);
  Rng rng(3);
  const auto mapping = work::ProcessMapping::RandomAligned(graph, workload, rng);
  const TrafficPattern pattern(graph, workload, mapping);
  for (const ExecMode mode : {ExecMode::kCycle, ExecMode::kEvent}) {
    SimConfig config;
    config.exec_mode = mode;
    config.message_length_flits = 32;
    config.input_buffer_flits = 2;
    config.warmup_cycles = 4000;
    config.measure_cycles = 12000;
    config.deadlock_threshold_cycles = 1000;
    NetworkSimulator sim(graph, routing, pattern, config);
    const SimMetrics m = sim.Run(1.6);
    EXPECT_TRUE(m.deadlock_detected || m.Saturated())
        << (mode == ExecMode::kCycle ? "cycle" : "event")
        << " neither deadlocked nor saturated";
    if (m.deadlock_detected) {
      EXPECT_LT(m.simulated_cycles, 16000u);
    } else {
      EXPECT_EQ(m.simulated_cycles, 16000u);
    }
  }
}

}  // namespace
}  // namespace commsched::sim
