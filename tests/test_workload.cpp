#include "workload/workload.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace commsched::work {
namespace {

topo::SwitchGraph PaperGraph(std::uint64_t seed = 1) {
  topo::IrregularTopologyOptions options;
  options.switch_count = 16;
  options.seed = seed;
  return topo::GenerateIrregularTopology(options);
}

TEST(Workload, UniformConstruction) {
  const Workload w = Workload::Uniform(4, 16);
  EXPECT_EQ(w.application_count(), 4u);
  EXPECT_EQ(w.total_processes(), 64u);
  EXPECT_EQ(w.applications()[2].name, "app2");
  EXPECT_DOUBLE_EQ(w.applications()[0].traffic_weight, 1.0);
}

TEST(Workload, ValidationAgainstGraph) {
  const topo::SwitchGraph g = PaperGraph();
  Workload::Uniform(4, 16).ValidateFor(g);          // 64 processes on 64 hosts
  EXPECT_THROW(Workload::Uniform(4, 8).ValidateFor(g), ConfigError);   // too few
  EXPECT_THROW(Workload::Uniform(2, 30).ValidateFor(g), ConfigError);  // not multiple of 4... and wrong total
}

TEST(Workload, NonMultipleOfHostsPerSwitchRejected) {
  const topo::SwitchGraph g = PaperGraph();
  // 62 + 2 = 64 hosts but 62 and 2 are not multiples of 4.
  const Workload w({{"big", 62}, {"small", 2}});
  EXPECT_THROW(w.ValidateFor(g), ConfigError);
}

TEST(Workload, ClusterSwitchSizes) {
  const topo::SwitchGraph g = PaperGraph();
  const Workload w = Workload::Uniform(4, 16);
  EXPECT_EQ(w.ClusterSwitchSizes(g), (std::vector<std::size_t>{4, 4, 4, 4}));
  const Workload uneven({{"a", 32}, {"b", 16}, {"c", 16}});
  EXPECT_EQ(uneven.ClusterSwitchSizes(g), (std::vector<std::size_t>{8, 4, 4}));
}

TEST(Workload, InvalidSpecsRejected) {
  EXPECT_THROW(Workload w({}), ContractError);
  EXPECT_THROW(Workload w({{"x", 0}}), ContractError);
  EXPECT_THROW(Workload w({{"x", 4, -1.0}}), ContractError);
  EXPECT_THROW(Workload w({{"x", 4, 1.0, 1.5}}), ContractError);
}

TEST(ProcessMapping, FromPartitionAssignsWholeSwitches) {
  const topo::SwitchGraph g = PaperGraph();
  const Workload w = Workload::Uniform(4, 16);
  const qual::Partition p = qual::Partition::Blocked({4, 4, 4, 4});
  const ProcessMapping m = ProcessMapping::FromPartition(g, w, p);
  EXPECT_TRUE(m.IsSwitchAligned(g));
  for (std::size_t h = 0; h < 16; ++h) {
    EXPECT_EQ(m.AppOfHost(h), 0u);  // first 4 switches = app 0
  }
  EXPECT_EQ(m.AppOfHost(63), 3u);
  EXPECT_EQ(m.HostsOfApp(0).size(), 16u);
}

TEST(ProcessMapping, InducedPartitionRoundTrips) {
  const topo::SwitchGraph g = PaperGraph();
  const Workload w = Workload::Uniform(4, 16);
  Rng rng(3);
  const qual::Partition p = qual::Partition::Random({4, 4, 4, 4}, rng);
  const ProcessMapping m = ProcessMapping::FromPartition(g, w, p);
  EXPECT_TRUE(m.InducedPartition(g) == p);
}

TEST(ProcessMapping, FromPartitionSizeMismatchRejected) {
  const topo::SwitchGraph g = PaperGraph();
  const Workload w = Workload::Uniform(4, 16);
  const qual::Partition wrong = qual::Partition::Blocked({8, 4, 2, 2});
  EXPECT_THROW((void)ProcessMapping::FromPartition(g, w, wrong), ContractError);
}

TEST(ProcessMapping, RandomAlignedIsAlignedAndComplete) {
  const topo::SwitchGraph g = PaperGraph();
  const Workload w = Workload::Uniform(4, 16);
  Rng rng(7);
  const ProcessMapping m = ProcessMapping::RandomAligned(g, w, rng);
  EXPECT_TRUE(m.IsSwitchAligned(g));
  for (std::size_t a = 0; a < 4; ++a) {
    EXPECT_EQ(m.HostsOfApp(a).size(), 16u);
  }
}

TEST(ProcessMapping, RandomUnalignedUsuallyBreaksAlignment) {
  const topo::SwitchGraph g = PaperGraph();
  const Workload w = Workload::Uniform(4, 16);
  Rng rng(7);
  int aligned = 0;
  for (int k = 0; k < 5; ++k) {
    if (ProcessMapping::RandomUnaligned(g, w, rng).IsSwitchAligned(g)) ++aligned;
  }
  EXPECT_EQ(aligned, 0);  // astronomically unlikely to align
}

TEST(ProcessMapping, UnalignedInducedPartitionRejected) {
  const topo::SwitchGraph g = PaperGraph();
  const Workload w = Workload::Uniform(4, 16);
  Rng rng(9);
  const ProcessMapping m = ProcessMapping::RandomUnaligned(g, w, rng);
  EXPECT_THROW((void)m.InducedPartition(g), ContractError);
}

TEST(ProcessMapping, ExplicitVectorValidated) {
  const topo::SwitchGraph g = PaperGraph();
  const Workload w = Workload::Uniform(4, 16);
  std::vector<std::size_t> bad(64, 0);  // all hosts app 0: counts wrong
  EXPECT_THROW(ProcessMapping m(g, w, bad), ContractError);
}

}  // namespace
}  // namespace commsched::work
