// Property tests for qual::SwapEvaluator's incremental maintenance: across
// many random (size, seed) instances, the running intracluster sum after a
// chain of ApplySwap calls must match a from-scratch recompute, and
// SwapDelta must predict exactly the observed before/after difference.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "distance/distance_table.h"
#include "quality/partition.h"
#include "quality/quality.h"
#include "routing/updown.h"
#include "topology/generator.h"

namespace commsched {
namespace {

constexpr double kTol = 1e-9;

/// Random symmetric table with off-diagonal entries in [0.5, 3.5) — the
/// quality functions only need symmetry and non-negativity, so random
/// tables explore far more shapes than real topologies would.
dist::DistanceTable RandomTable(std::size_t n, Rng& rng) {
  dist::DistanceTable table(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      table.Set(i, j, 0.5 + 3.0 * rng.NextDouble());
    }
  }
  return table;
}

/// Random cluster sizes: `clusters` parts of n with every part >= 1.
std::vector<std::size_t> RandomClusterSizes(std::size_t n, std::size_t clusters, Rng& rng) {
  std::vector<std::size_t> sizes(clusters, 1);
  for (std::size_t extra = n - clusters; extra > 0; --extra) {
    ++sizes[rng.NextIndex(clusters)];
  }
  return sizes;
}

/// A uniformly random pair of switches in different clusters (the partition
/// always has >= 2 clusters here, so one exists).
std::pair<std::size_t, std::size_t> RandomInterClusterPair(const qual::Partition& partition,
                                                           Rng& rng) {
  for (;;) {
    const std::size_t a = rng.NextIndex(partition.switch_count());
    const std::size_t b = rng.NextIndex(partition.switch_count());
    if (a != b && partition.ClusterOf(a) != partition.ClusterOf(b)) {
      return {a, b};
    }
  }
}

/// One (size, seed) case: walk 12 random swaps, checking the two properties
/// after every step.
void CheckCase(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = 6 + rng.NextIndex(19);           // 6..24 switches
  const std::size_t clusters = 2 + rng.NextIndex(3);     // 2..4 clusters
  const dist::DistanceTable table = RandomTable(n, rng);
  const std::vector<std::size_t> sizes = RandomClusterSizes(n, clusters, rng);
  qual::SwapEvaluator eval(table, qual::Partition::Random(sizes, rng));

  for (int step = 0; step < 12; ++step) {
    const auto [a, b] = RandomInterClusterPair(eval.partition(), rng);
    const double predicted_delta = eval.SwapDelta(a, b);
    const double before = eval.IntraSum();

    eval.ApplySwap(a, b);

    // Property 1: the incrementally maintained sum matches a from-scratch
    // recompute (Reset on a copy forces the O(N^2) path).
    qual::SwapEvaluator fresh = eval;
    fresh.Reset(eval.partition());
    EXPECT_NEAR(eval.IntraSum(), fresh.IntraSum(), kTol)
        << "seed=" << seed << " n=" << n << " step=" << step;

    // Property 2: SwapDelta predicted exactly the observed difference.
    EXPECT_NEAR(predicted_delta, eval.IntraSum() - before, kTol)
        << "seed=" << seed << " n=" << n << " step=" << step;

    // Fg is affine in the intra sum, so it must agree with the fresh copy
    // too (guards the cached normalizers).
    EXPECT_NEAR(eval.Fg(), fresh.Fg(), kTol);
  }
}

TEST(SwapEvaluatorProperty, IncrementalMatchesRecomputeAcross120RandomCases) {
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    CheckCase(seed);
  }
}

// The same properties on a real equivalent-distance table, where entries
// correlate through the topology rather than being independent.
TEST(SwapEvaluatorProperty, HoldsOnRealTopologyTables) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    topo::IrregularTopologyOptions options;
    options.switch_count = 16;
    options.seed = seed;
    const topo::SwitchGraph graph = topo::GenerateIrregularTopology(options);
    const route::UpDownRouting routing(graph);
    const dist::DistanceTable table = dist::DistanceTable::Build(routing);

    Rng rng(seed);
    qual::SwapEvaluator eval(table, qual::Partition::Random({4, 4, 4, 4}, rng));
    for (int step = 0; step < 10; ++step) {
      const auto [a, b] = RandomInterClusterPair(eval.partition(), rng);
      const double predicted_delta = eval.SwapDelta(a, b);
      const double before = eval.IntraSum();
      eval.ApplySwap(a, b);
      qual::SwapEvaluator fresh = eval;
      fresh.Reset(eval.partition());
      EXPECT_NEAR(eval.IntraSum(), fresh.IntraSum(), kTol);
      EXPECT_NEAR(predicted_delta, eval.IntraSum() - before, kTol);
    }
  }
}

}  // namespace
}  // namespace commsched
