#include "sched/local_search.h"

#include <gtest/gtest.h>

#include "distance/distance_table.h"
#include "routing/updown.h"
#include "sched/tabu.h"
#include "topology/generator.h"

namespace commsched::sched {
namespace {

DistanceTable PaperTable(std::size_t switches, std::uint64_t seed) {
  topo::IrregularTopologyOptions options;
  options.switch_count = switches;
  options.seed = seed;
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const route::UpDownRouting routing(g);
  return DistanceTable::Build(routing);
}

TEST(SteepestDescent, FindsTwoIslands) {
  DistanceTable t(4, 10.0);
  t.Set(0, 1, 1.0);
  t.Set(2, 3, 1.0);
  const SearchResult result = SteepestDescent(t, {2, 2});
  EXPECT_TRUE(result.best.SameGrouping(qual::Partition({0, 0, 1, 1})));
}

TEST(SteepestDescent, ReachesALocalMinimum) {
  const DistanceTable t = PaperTable(12, 3);
  SteepestDescentOptions options;
  options.restarts = 1;
  const SearchResult result = SteepestDescent(t, {3, 3, 3, 3}, options);
  // At a local minimum no inter-cluster swap decreases F_G.
  qual::SwapEvaluator eval(t, result.best);
  for (std::size_t a = 0; a < 12; ++a) {
    for (std::size_t b = a + 1; b < 12; ++b) {
      if (result.best.ClusterOf(a) == result.best.ClusterOf(b)) continue;
      EXPECT_GE(eval.SwapDelta(a, b), -1e-9);
    }
  }
}

TEST(SteepestDescent, Deterministic) {
  const DistanceTable t = PaperTable(12, 5);
  SteepestDescentOptions options;
  options.rng_seed = 11;
  const SearchResult a = SteepestDescent(t, {3, 3, 3, 3}, options);
  const SearchResult b = SteepestDescent(t, {3, 3, 3, 3}, options);
  EXPECT_EQ(a.best, b.best);
}

TEST(SteepestDescent, NeverBeatsTabuWithSameSeeds) {
  // Tabu = steepest descent + escape; with identical restarts it can only
  // match or improve.
  const DistanceTable t = PaperTable(16, 6);
  SteepestDescentOptions sd;
  sd.restarts = 10;
  sd.rng_seed = 3;
  TabuOptions tabu;
  tabu.seeds = 10;
  tabu.rng_seed = 3;
  tabu.max_iterations_per_seed = 200;
  EXPECT_LE(TabuSearch(t, {4, 4, 4, 4}, tabu).best_fg,
            SteepestDescent(t, {4, 4, 4, 4}, sd).best_fg + 1e-9);
}

TEST(RandomSearch, BestOfSamplesImprovesWithMoreSamples) {
  const DistanceTable t = PaperTable(16, 7);
  RandomSearchOptions small;
  small.samples = 5;
  small.rng_seed = 1;
  RandomSearchOptions large;
  large.samples = 500;
  large.rng_seed = 1;
  EXPECT_LE(RandomSearch(t, {4, 4, 4, 4}, large).best_fg,
            RandomSearch(t, {4, 4, 4, 4}, small).best_fg + 1e-12);
}

TEST(RandomSearch, CountsEvaluations) {
  const DistanceTable t = PaperTable(8, 1);
  RandomSearchOptions options;
  options.samples = 123;
  const SearchResult result = RandomSearch(t, {2, 2, 2, 2}, options);
  EXPECT_EQ(result.evaluations, 123u);
}

TEST(RandomSearch, ZeroSamplesRejected) {
  const DistanceTable t = PaperTable(8, 1);
  RandomSearchOptions options;
  options.samples = 0;
  EXPECT_THROW((void)RandomSearch(t, {2, 2, 2, 2}, options), commsched::ContractError);
}

}  // namespace
}  // namespace commsched::sched
