#include "quality/partition.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"

namespace commsched::qual {
namespace {

TEST(Partition, FromVectorBasics) {
  const Partition p({0, 0, 1, 1, 2, 2});
  EXPECT_EQ(p.switch_count(), 6u);
  EXPECT_EQ(p.cluster_count(), 3u);
  EXPECT_EQ(p.ClusterOf(3), 1u);
  EXPECT_EQ(p.ClusterSize(2), 2u);
}

TEST(Partition, RejectsNonContiguousClusterIds) {
  EXPECT_THROW(Partition p({0, 2}), ContractError);  // cluster 1 missing
}

TEST(Partition, FromClusters) {
  const Partition p = Partition::FromClusters({{0, 3}, {1, 2}});
  EXPECT_EQ(p.ClusterOf(0), 0u);
  EXPECT_EQ(p.ClusterOf(3), 0u);
  EXPECT_EQ(p.ClusterOf(1), 1u);
}

TEST(Partition, FromClustersValidation) {
  EXPECT_THROW((void)Partition::FromClusters({{0, 1}, {1, 2}}), ContractError);  // dup
  EXPECT_THROW((void)Partition::FromClusters({{0, 5}, {1, 2}}), ContractError);  // gap
  EXPECT_THROW((void)Partition::FromClusters({{0, 1}, {}}), ContractError);      // empty
}

TEST(Partition, MembersSorted) {
  const Partition p({1, 0, 1, 0});
  EXPECT_EQ(p.Members(0), (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(p.Members(1), (std::vector<std::size_t>{0, 2}));
}

TEST(Partition, RandomHasRequestedSizes) {
  Rng rng(5);
  const Partition p = Partition::Random({4, 4, 4, 4}, rng);
  EXPECT_EQ(p.switch_count(), 16u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(p.ClusterSize(c), 4u);
  }
}

TEST(Partition, RandomVariesWithRng) {
  Rng rng(5);
  std::set<std::string> seen;
  for (int i = 0; i < 10; ++i) {
    seen.insert(Partition::Random({4, 4, 4, 4}, rng).ToString());
  }
  EXPECT_GT(seen.size(), 5u);
}

TEST(Partition, BlockedLayout) {
  const Partition p = Partition::Blocked({2, 3});
  EXPECT_EQ(p.ClusterOf(0), 0u);
  EXPECT_EQ(p.ClusterOf(1), 0u);
  EXPECT_EQ(p.ClusterOf(2), 1u);
  EXPECT_EQ(p.ClusterOf(4), 1u);
}

TEST(Partition, MoveUpdatesSizes) {
  Partition p({0, 0, 1, 1});
  p.Move(0, 1);
  EXPECT_EQ(p.ClusterOf(0), 1u);
  EXPECT_EQ(p.ClusterSize(0), 1u);
  EXPECT_EQ(p.ClusterSize(1), 3u);
  // Switch 1 is now cluster 0's only member; moving it away would empty it.
  EXPECT_THROW(p.Move(1, 1), ContractError);
}

TEST(Partition, MoveCannotEmptyCluster) {
  Partition p({0, 1, 1});
  EXPECT_THROW(p.Move(0, 1), ContractError);
}

TEST(Partition, SwapPreservesSizes) {
  Partition p({0, 0, 1, 1});
  p.Swap(1, 2);
  EXPECT_EQ(p.ClusterOf(1), 1u);
  EXPECT_EQ(p.ClusterOf(2), 0u);
  EXPECT_EQ(p.ClusterSize(0), 2u);
  EXPECT_EQ(p.ClusterSize(1), 2u);
}

TEST(Partition, PairCountsMatchEquations) {
  const Partition p({0, 0, 0, 1, 1, 2});  // sizes 3, 2, 1
  EXPECT_EQ(p.IntraPairCount(), 3u + 1u + 0u);           // eq. (3)
  EXPECT_EQ(p.InterPairCountOrdered(), 3u * 3 + 2u * 4 + 1u * 5);
}

TEST(Partition, ToStringMatchesPaperStyle) {
  const Partition p = Partition::FromClusters({{5, 6, 8, 15}, {0, 1, 11, 12},
                                               {3, 9, 10, 14}, {2, 4, 7, 13}});
  EXPECT_EQ(p.ToString(), "(0,1,11,12) (2,4,7,13) (3,9,10,14) (5,6,8,15)");
}

TEST(Partition, SameGroupingIgnoresLabels) {
  const Partition a({0, 0, 1, 1});
  const Partition b({1, 1, 0, 0});
  const Partition c({0, 1, 0, 1});
  EXPECT_TRUE(a.SameGrouping(b));
  EXPECT_FALSE(a.SameGrouping(c));
  EXPECT_FALSE(a == b);
}

TEST(Partition, CanonicalLabelsFirstAppearanceOrder) {
  const Partition p({2, 2, 0, 1, 0});
  EXPECT_EQ(p.CanonicalLabels(), (std::vector<std::size_t>{0, 0, 1, 2, 1}));
}

}  // namespace
}  // namespace commsched::qual
