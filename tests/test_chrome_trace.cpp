// Span profiling and the Chrome trace-event exporter: RAII begin/end with
// nesting depth and thread ids, a valid trace-event JSON array, and stable
// span sequences for seeded runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "distance/distance_table.h"
#include "jsonl_test_util.h"
#include "obs/span.h"
#include "routing/updown.h"
#include "sched/tabu.h"
#include "topology/generator.h"

namespace commsched {
namespace {

using obs::ScopedSpanCollector;
using obs::Span;
using obs::SpanCollector;
using obs::SpanRecord;

/// Parses a Chrome trace written by WriteChromeTrace: strips the array
/// brackets and trailing commas, then parses each line as one JSON object.
std::vector<std::map<std::string, std::string>> ParseChromeTrace(const std::string& text) {
  std::vector<std::map<std::string, std::string>> events;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line == "[" || line == "]" || line.empty()) continue;
    if (!line.empty() && line.back() == ',') line.pop_back();
    const auto fields = testutil::ParseJsonObject(line);
    EXPECT_TRUE(fields.has_value()) << line;
    if (fields.has_value()) events.push_back(*fields);
  }
  return events;
}

TEST(SpanTest, DisabledByDefaultAndScopedInstall) {
  EXPECT_EQ(obs::ActiveSpanCollector(), nullptr);
  { const Span span("noop"); }  // no collector: must be a no-op
  SpanCollector collector;
  {
    const ScopedSpanCollector scope(collector);
    EXPECT_EQ(obs::ActiveSpanCollector(), &collector);
    const Span span("work");
  }
  EXPECT_EQ(obs::ActiveSpanCollector(), nullptr);
  EXPECT_EQ(collector.size(), 1u);
}

TEST(SpanTest, NestedScopedCollectorsRestoreThePreviousOne) {
  SpanCollector outer;
  SpanCollector inner;
  {
    const ScopedSpanCollector outer_scope(outer);
    {
      const ScopedSpanCollector inner_scope(inner);
      EXPECT_EQ(obs::ActiveSpanCollector(), &inner);
    }
    EXPECT_EQ(obs::ActiveSpanCollector(), &outer);
  }
  EXPECT_EQ(obs::ActiveSpanCollector(), nullptr);
}

TEST(SpanTest, RecordsNestingDepthAndContainment) {
  SpanCollector collector;
  {
    const ScopedSpanCollector scope(collector);
    const Span outer("outer", "k", 1);
    {
      const Span middle("middle");
      const Span innermost("innermost", "k", 3);
    }
  }
  const std::vector<SpanRecord> records = collector.Records();
  ASSERT_EQ(records.size(), 3u);
  const auto find = [&](const std::string& name) -> const SpanRecord& {
    const auto it = std::find_if(records.begin(), records.end(),
                                 [&](const SpanRecord& r) { return r.name == name; });
    EXPECT_NE(it, records.end()) << name;
    return *it;
  };
  const SpanRecord& outer = find("outer");
  const SpanRecord& middle = find("middle");
  const SpanRecord& innermost = find("innermost");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(middle.depth, 1u);
  EXPECT_EQ(innermost.depth, 2u);
  // All on the registering thread; children nest inside the parent interval.
  EXPECT_EQ(middle.tid, outer.tid);
  EXPECT_EQ(innermost.tid, outer.tid);
  EXPECT_LE(outer.start_us, innermost.start_us);
  EXPECT_GE(outer.start_us + outer.dur_us, innermost.start_us + innermost.dur_us);
  EXPECT_EQ(outer.arg_key, "k");
  EXPECT_EQ(outer.arg, 1u);
  EXPECT_EQ(middle.arg_key, "");
}

TEST(SpanTest, SetArgOverridesTheConstructorArgument) {
  SpanCollector collector;
  {
    const ScopedSpanCollector scope(collector);
    Span span("iter", "iter", 7);
    span.SetArg("escape_iter", 7);
  }
  const std::vector<SpanRecord> records = collector.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].arg_key, "escape_iter");
  EXPECT_EQ(records[0].arg, 7u);
}

TEST(SpanTest, ThreadsGetDenseDistinctIds) {
  SpanCollector collector;
  constexpr std::size_t kTasks = 16;
  {
    const ScopedSpanCollector scope(collector);
    ThreadPool pool(4);
    for (std::size_t t = 0; t < kTasks; ++t) {
      pool.Submit([t] { const Span span("task", "t", t); });
    }
    pool.Wait();
  }
  const std::vector<SpanRecord> records = collector.Records();
  ASSERT_EQ(records.size(), kTasks);
  std::uint32_t max_tid = 0;
  for (const SpanRecord& r : records) max_tid = std::max(max_tid, r.tid);
  EXPECT_LT(max_tid, 4u);  // dense ids: at most one per pool worker
}

TEST(ChromeTraceTest, WritesValidCompleteEvents) {
  SpanCollector collector;
  {
    const ScopedSpanCollector scope(collector);
    const Span outer("phase", "point", 2);
    const Span inner("step");
  }
  const std::string json = collector.ToChromeTraceJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');  // trailing newline after ']'
  const auto events = ParseChromeTrace(json);
  ASSERT_EQ(events.size(), 2u);
  for (const auto& event : events) {
    EXPECT_EQ(testutil::JsonString(event, "ph"), "X");
    EXPECT_EQ(testutil::JsonString(event, "cat"), "commsched");
    EXPECT_EQ(testutil::JsonUint(event, "pid", 99), 1u);
    EXPECT_NE(testutil::JsonRaw(event, "ts"), "");
    EXPECT_NE(testutil::JsonRaw(event, "dur"), "");
    const auto args = testutil::ParseJsonObject(testutil::JsonRaw(event, "args"));
    ASSERT_TRUE(args.has_value());
    EXPECT_NE(testutil::JsonRaw(*args, "depth"), "");
  }
  const auto phase_event =
      std::find_if(events.begin(), events.end(), [](const auto& event) {
        return testutil::JsonString(event, "name") == "phase";
      });
  ASSERT_NE(phase_event, events.end());
  const auto outer_args =
      testutil::ParseJsonObject(testutil::JsonRaw(*phase_event, "args"));
  ASSERT_TRUE(outer_args.has_value());
  EXPECT_EQ(testutil::JsonUint(*outer_args, "point", 99), 2u);
}

TEST(ChromeTraceTest, EmptyCollectorWritesAnEmptyArray) {
  SpanCollector collector;
  std::ostringstream out;
  collector.WriteChromeTrace(out);
  const auto events = ParseChromeTrace(out.str());
  EXPECT_TRUE(events.empty());
}

/// The span *sequence* (names + args in start order) of a seeded sequential
/// Tabu run must be identical across runs — wall-clock jitter may change
/// timestamps but never which spans open in which order.
std::vector<std::string> SeededTabuSpanSequence() {
  topo::IrregularTopologyOptions topo_options;
  topo_options.switch_count = 16;
  topo_options.seed = 1;
  const topo::SwitchGraph graph = topo::GenerateIrregularTopology(topo_options);
  const route::UpDownRouting routing(graph);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);
  sched::TabuOptions options;
  options.seeds = 3;
  options.max_iterations_per_seed = 8;
  options.parallel_seeds = false;

  SpanCollector collector;
  {
    const ScopedSpanCollector scope(collector);
    (void)sched::TabuSearch(table, {4, 4, 4, 4}, options);
  }
  std::vector<std::string> sequence;
  for (const SpanRecord& r : collector.Records()) {
    sequence.push_back(r.name + "/" + r.arg_key + "=" + std::to_string(r.arg));
  }
  return sequence;
}

TEST(ChromeTraceTest, SeededRunProducesAStableSpanSequence) {
  std::vector<std::string> first = SeededTabuSpanSequence();
  std::vector<std::string> second = SeededTabuSpanSequence();
  ASSERT_FALSE(first.empty());
  // The run profiles seeds and iterations, seed 0 opening first.
  EXPECT_EQ(first[0], "tabu.seed/seed=0");
  EXPECT_NE(std::find(first.begin(), first.end(), "tabu.iter/iter=0"), first.end());
  // Identical seeded runs must produce the same spans with the same args
  // (compared as sorted multisets: sub-microsecond sibling spans may tie on
  // start time, making their relative order timing noise).
  std::sort(first.begin(), first.end());
  std::sort(second.begin(), second.end());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace commsched
