// Request-scoped observability (obs/request.h): context install/restore,
// stage accounting, automatic request-id tagging of trace events and spans,
// and the daemon-level timings contract (stages sum exactly to the total).
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/request.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "service/daemon.h"
#include "service/json.h"
#include "service/service.h"

namespace commsched {
namespace {

using obs::RequestContext;
using obs::RequestStage;
using obs::ScopedRequestContext;
using obs::StageTimer;

TEST(RequestContextTest, NoContextByDefault) {
  EXPECT_EQ(RequestContext::Current(), nullptr);
}

TEST(RequestContextTest, ScopedInstallAndNesting) {
  RequestContext outer("outer");
  {
    const ScopedRequestContext outer_scope(outer);
    EXPECT_EQ(RequestContext::Current(), &outer);
    RequestContext inner("inner");
    {
      const ScopedRequestContext inner_scope(inner);
      EXPECT_EQ(RequestContext::Current(), &inner);
    }
    EXPECT_EQ(RequestContext::Current(), &outer);
  }
  EXPECT_EQ(RequestContext::Current(), nullptr);
}

TEST(RequestContextTest, StagesAccumulate) {
  RequestContext context("r");
  context.AddStageNanos(RequestStage::kQueue, 100);
  context.AddStageNanos(RequestStage::kQueue, 50);
  context.AddStageNanos(RequestStage::kSearch, 1000);
  EXPECT_EQ(context.stage_ns(RequestStage::kQueue), 150u);
  EXPECT_EQ(context.stage_ns(RequestStage::kSearch), 1000u);
  EXPECT_EQ(context.InstrumentedNanos(), 1150u);
  // kOther is the rendered remainder, not part of the instrumented sum.
  context.AddStageNanos(RequestStage::kOther, 77);
  EXPECT_EQ(context.InstrumentedNanos(), 1150u);
}

TEST(RequestContextTest, StageTimerRecordsIntoCurrentContext) {
  RequestContext context("r");
  const ScopedRequestContext scope(context);
  {
    const StageTimer timer(RequestStage::kModel);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(context.stage_ns(RequestStage::kModel), 0u);
}

TEST(RequestContextTest, StageTimerIsNoopWithoutContext) {
  { const StageTimer timer(RequestStage::kModel); }  // must not crash
  SUCCEED();
}

TEST(RequestContextTest, StageNamesAreStable) {
  EXPECT_STREQ(obs::RequestStageName(RequestStage::kQueue), "queue_ns");
  EXPECT_STREQ(obs::RequestStageName(RequestStage::kParse), "parse_ns");
  EXPECT_STREQ(obs::RequestStageName(RequestStage::kModel), "model_ns");
  EXPECT_STREQ(obs::RequestStageName(RequestStage::kSearch), "search_ns");
  EXPECT_STREQ(obs::RequestStageName(RequestStage::kSerialize), "serialize_ns");
  EXPECT_STREQ(obs::RequestStageName(RequestStage::kOther), "other_ns");
}

TEST(RequestContextTrace, EventsCarryTheRequestId) {
  std::ostringstream out;
  obs::Tracer tracer(out);
  const obs::ScopedTracer scoped(tracer);

  tracer.Emit(obs::TraceEvent("before").F("k", 1));
  {
    RequestContext context("req-7");
    const ScopedRequestContext scope(context);
    tracer.Emit(obs::TraceEvent("during").F("k", 2));
  }
  tracer.Emit(obs::TraceEvent("after").F("k", 3));

  std::istringstream lines(out.str());
  std::string before, during, after;
  std::getline(lines, before);
  std::getline(lines, during);
  std::getline(lines, after);
  EXPECT_EQ(before.find("\"req\""), std::string::npos);
  EXPECT_NE(during.find("\"req\":\"req-7\""), std::string::npos);
  EXPECT_EQ(after.find("\"req\""), std::string::npos);
}

TEST(RequestContextSpans, TreeHasExactlyOneRootWithTheRequestId) {
  obs::SpanCollector collector;
  const obs::ScopedSpanCollector scoped(collector);

  {
    RequestContext context("req-tree");
    const ScopedRequestContext scope(context);
    obs::Span root("svc.execute");
    {
      obs::Span child("exec.search");
      { obs::Span grandchild("tabu.seed", "seed", 0); }
    }
    { obs::Span sibling("svc.render"); }
  }
  { obs::Span untagged("outside"); }

  std::size_t tagged = 0;
  std::size_t tagged_roots = 0;
  for (const obs::SpanRecord& record : collector.Records()) {
    if (record.name == "outside") {
      EXPECT_TRUE(record.req.empty());
      continue;
    }
    EXPECT_EQ(record.req, "req-tree");
    ++tagged;
    if (record.depth == 0) ++tagged_roots;
  }
  EXPECT_EQ(tagged, 4u);
  EXPECT_EQ(tagged_roots, 1u);  // the span tree reassembles under one root
}

// Daemon-level timings contract: a request with "timings":true gets a
// per-stage breakdown whose stages (including the other_ns remainder) sum
// exactly to total_ns, tagged with the request's id.
TEST(RequestContextDaemon, TimingsStagesSumToTotal) {
  svc::SchedulingService service;
  svc::DaemonOptions options;
  options.workers = 2;
  svc::Daemon daemon(service, options);

  std::mutex mutex;
  std::condition_variable done;
  std::string response;
  daemon.Submit(
      R"({"id":"t-9","op":"schedule","topology":{"kind":"mixed"},"apps":4,"timings":true})",
      [&](const std::string& line) {
        std::lock_guard<std::mutex> lock(mutex);
        response = line;
        done.notify_all();
      });
  {
    std::unique_lock<std::mutex> lock(mutex);
    done.wait(lock, [&] { return !response.empty(); });
  }

  const svc::JsonValue root = svc::ParseJson(response);
  ASSERT_TRUE(root.Find("ok")->AsBool("ok"));
  EXPECT_EQ(root.Find("req")->AsString("req"), "t-9");
  const svc::JsonValue* timings = root.Find("timings");
  ASSERT_NE(timings, nullptr);
  const std::uint64_t total = timings->Find("total_ns")->AsUint("total_ns");
  std::uint64_t sum = 0;
  for (const char* stage :
       {"queue_ns", "parse_ns", "model_ns", "search_ns", "serialize_ns", "other_ns"}) {
    const svc::JsonValue* value = timings->Find(stage);
    ASSERT_NE(value, nullptr) << stage;
    sum += value->AsUint(stage);
  }
  EXPECT_EQ(sum, total);
  EXPECT_GT(total, 0u);
  // The search dominates a cold schedule request.
  EXPECT_GT(timings->Find("search_ns")->AsUint("search_ns"), 0u);
}

TEST(RequestContextDaemon, NoTimingsUnlessRequested) {
  svc::SchedulingService service;
  svc::Daemon daemon(service, {});
  std::mutex mutex;
  std::condition_variable done;
  std::string response;
  daemon.Submit(R"({"id":"p","op":"ping"})", [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex);
    response = line;
    done.notify_all();
  });
  {
    std::unique_lock<std::mutex> lock(mutex);
    done.wait(lock, [&] { return !response.empty(); });
  }
  EXPECT_EQ(response, R"({"id":"p","ok":true,"op":"ping"})");
}

TEST(RequestContextDaemon, ContextDoesNotLeakAcrossRequests) {
  svc::SchedulingService service;
  svc::DaemonOptions options;
  options.workers = 1;  // both requests run on the same worker thread
  svc::Daemon daemon(service, options);

  std::ostringstream out;
  obs::Tracer tracer(out);
  const obs::ScopedTracer scoped(tracer);

  std::mutex mutex;
  std::condition_variable done;
  int answered = 0;
  const auto sink = [&](const std::string&) {
    std::lock_guard<std::mutex> lock(mutex);
    ++answered;
    done.notify_all();
  };
  daemon.Submit(R"({"id":"a","op":"ping"})", sink);
  daemon.Submit(R"({"id":"b","op":"ping"})", sink);
  {
    std::unique_lock<std::mutex> lock(mutex);
    done.wait(lock, [&] { return answered == 2; });
  }
  daemon.Drain();

  // Each svc.request event carries its own request's id, never a stale one.
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("svc.request") == std::string::npos) continue;
    if (line.find("\"id\":\"a\"") != std::string::npos) {
      EXPECT_NE(line.find("\"req\":\"a\""), std::string::npos) << line;
    }
    if (line.find("\"id\":\"b\"") != std::string::npos) {
      EXPECT_NE(line.find("\"req\":\"b\""), std::string::npos) << line;
    }
  }
}

}  // namespace
}  // namespace commsched
