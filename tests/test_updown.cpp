#include "routing/updown.h"

#include <gtest/gtest.h>

#include "topology/generator.h"
#include "topology/library.h"

namespace commsched::route {
namespace {

using topo::GenerateIrregularTopology;
using topo::IrregularTopologyOptions;
using topo::MakeRing;
using topo::MakeStar;

TEST(UpDown, RootPolicies) {
  const topo::SwitchGraph star = MakeStar(4);  // hub 0
  EXPECT_EQ(SelectRoot(star, RootPolicy::kLowestId), 0u);
  EXPECT_EQ(SelectRoot(star, RootPolicy::kMaxDegree), 0u);
  EXPECT_EQ(SelectRoot(star, RootPolicy::kMinEccentricity), 0u);

  topo::SwitchGraph path(5, 1);  // 0-1-2-3-4: center is 2
  for (std::size_t i = 0; i + 1 < 5; ++i) path.AddLink(i, i + 1);
  EXPECT_EQ(SelectRoot(path, RootPolicy::kMinEccentricity), 2u);
}

TEST(UpDown, LevelsFollowBfs) {
  topo::SwitchGraph path(4, 1);
  for (std::size_t i = 0; i + 1 < 4; ++i) path.AddLink(i, i + 1);
  const UpDownRouting routing(path, topo::SwitchId{0});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(routing.Level(i), i);
  }
  EXPECT_EQ(routing.root(), 0u);
}

TEST(UpDown, UpEndIsCloserToRoot) {
  const topo::SwitchGraph ring = MakeRing(6);
  const UpDownRouting routing(ring, topo::SwitchId{0});
  for (topo::LinkId l = 0; l < ring.link_count(); ++l) {
    const topo::Link& link = ring.link(l);
    const topo::SwitchId up = routing.UpEnd(l);
    const topo::SwitchId down = ring.OtherEnd(l, up);
    if (routing.Level(up) != routing.Level(down)) {
      EXPECT_LT(routing.Level(up), routing.Level(down));
    } else {
      EXPECT_LT(up, down);  // Autonet tie-break by id
    }
    EXPECT_TRUE(routing.IsUpTraversal(l, down));
    EXPECT_FALSE(routing.IsUpTraversal(l, up));
    (void)link;
  }
}

TEST(UpDown, MinimalDistanceOnPathEqualsHops) {
  topo::SwitchGraph path(5, 1);
  for (std::size_t i = 0; i + 1 < 5; ++i) path.AddLink(i, i + 1);
  const UpDownRouting routing(path, topo::SwitchId{0});
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(routing.MinimalDistance(i, j), i > j ? i - j : j - i);
    }
  }
}

TEST(UpDown, RingDistancesCanExceedPhysicalShortestPath) {
  // In a 6-ring rooted at 0, the up*/down* path between some neighbours of
  // the "bottom" is forced the long way: between 2 and 4 (levels 2,2 via
  // opposite sides) the legal distance exceeds the physical 2.
  const topo::SwitchGraph ring = MakeRing(6);
  const UpDownRouting routing(ring, topo::SwitchId{0});
  bool some_pair_longer = false;
  const auto hops = ring.AllPairsHopDistance();
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_GE(routing.MinimalDistance(i, j), hops[i][j]);
      if (routing.MinimalDistance(i, j) > hops[i][j]) some_pair_longer = true;
    }
  }
  EXPECT_TRUE(some_pair_longer);
}

TEST(UpDown, NextHopsLeadToDestination) {
  IrregularTopologyOptions options;
  options.switch_count = 16;
  options.seed = 11;
  const topo::SwitchGraph g = GenerateIrregularTopology(options);
  const UpDownRouting routing(g);
  // Walk the deterministic (first-candidate) route for every pair and check
  // it arrives with exactly MinimalDistance hops and legal phases.
  for (topo::SwitchId s = 0; s < 16; ++s) {
    for (topo::SwitchId t = 0; t < 16; ++t) {
      if (s == t) continue;
      topo::SwitchId at = s;
      Phase phase = Phase::kUp;
      std::size_t hops = 0;
      bool went_down = false;
      while (at != t) {
        const auto next = routing.NextHops(at, t, phase);
        ASSERT_FALSE(next.empty());
        const NextHop& hop = next.front();
        // Legality: never up after down.
        const bool is_up = routing.IsUpTraversal(hop.link, at);
        if (went_down) EXPECT_FALSE(is_up);
        if (!is_up) went_down = true;
        at = hop.next;
        phase = hop.phase;
        ++hops;
        ASSERT_LE(hops, 32u) << "routing loop";
      }
      EXPECT_EQ(hops, routing.MinimalDistance(s, t));
    }
  }
}

TEST(UpDown, NextHopsEmptyAtDestination) {
  const topo::SwitchGraph ring = MakeRing(4);
  const UpDownRouting routing(ring, topo::SwitchId{0});
  EXPECT_TRUE(routing.NextHops(2, 2, Phase::kUp).empty());
}

TEST(UpDown, ArrivalPhaseMatchesTraversalDirection) {
  const topo::SwitchGraph ring = MakeRing(4);
  const UpDownRouting routing(ring, topo::SwitchId{0});
  for (topo::LinkId l = 0; l < ring.link_count(); ++l) {
    const topo::SwitchId up = routing.UpEnd(l);
    const topo::SwitchId down = ring.OtherEnd(l, up);
    EXPECT_EQ(routing.ArrivalPhase(l, up), Phase::kUp);      // moved upward
    EXPECT_EQ(routing.ArrivalPhase(l, down), Phase::kDown);  // moved downward
  }
}

TEST(UpDown, LinksOnMinimalPathsContainsAWholePath) {
  IrregularTopologyOptions options;
  options.switch_count = 12;
  options.seed = 4;
  const topo::SwitchGraph g = GenerateIrregularTopology(options);
  const UpDownRouting routing(g);
  for (topo::SwitchId s = 0; s < 12; ++s) {
    for (topo::SwitchId t = s + 1; t < 12; ++t) {
      const auto links = routing.LinksOnMinimalPaths(s, t);
      ASSERT_FALSE(links.empty());
      EXPECT_GE(links.size(), routing.MinimalDistance(s, t));
      // The deterministic route's links must all be in the set.
      topo::SwitchId at = s;
      Phase phase = Phase::kUp;
      while (at != t) {
        const NextHop hop = routing.NextHops(at, t, phase).front();
        EXPECT_NE(std::find(links.begin(), links.end(), hop.link), links.end());
        at = hop.next;
        phase = hop.phase;
      }
    }
  }
}

TEST(UpDown, LinksOnMinimalPathsEmptyForSamePair) {
  const topo::SwitchGraph ring = MakeRing(4);
  const UpDownRouting routing(ring, topo::SwitchId{0});
  EXPECT_TRUE(routing.LinksOnMinimalPaths(1, 1).empty());
}

TEST(UpDown, EnumerateMinimalPathsAllMinimalAndLegal) {
  IrregularTopologyOptions options;
  options.switch_count = 10;
  options.seed = 21;
  const topo::SwitchGraph g = GenerateIrregularTopology(options);
  const UpDownRouting routing(g);
  for (topo::SwitchId s = 0; s < 10; ++s) {
    for (topo::SwitchId t = 0; t < 10; ++t) {
      if (s == t) continue;
      const auto paths = EnumerateMinimalPaths(routing, s, t);
      ASSERT_FALSE(paths.empty());
      for (const auto& path : paths) {
        EXPECT_EQ(path.front(), s);
        EXPECT_EQ(path.back(), t);
        EXPECT_EQ(path.size(), routing.MinimalDistance(s, t) + 1);
      }
    }
  }
}

TEST(UpDown, DisconnectedGraphRejected) {
  topo::SwitchGraph g(4, 1);
  g.AddLink(0, 1);
  g.AddLink(2, 3);
  try {
    UpDownRouting routing(g);
    FAIL() << "expected DisconnectedGraphError";
  } catch (const DisconnectedGraphError& e) {
    // Root policy kMaxDegree picks switch 0 (all tie at degree 1), so the
    // stranded component {2, 3} must be named, in order.
    EXPECT_EQ(e.unreachable_switches(), (std::vector<SwitchId>{2, 3}));
    EXPECT_NE(std::string(e.what()).find("{2, 3}"), std::string::npos) << e.what();
  }
  // The typed error is user-facing configuration feedback, not a contract
  // violation — it must be catchable as ConfigError.
  EXPECT_THROW(UpDownRouting routing(g), commsched::ConfigError);
}

TEST(UpDown, StarRoutesThroughHub) {
  const topo::SwitchGraph star = MakeStar(4);
  const UpDownRouting routing(star);
  EXPECT_EQ(routing.MinimalDistance(1, 2), 2u);
  const auto hops = routing.NextHops(1, 2, Phase::kUp);
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops.front().next, 0u);
}

}  // namespace
}  // namespace commsched::route
