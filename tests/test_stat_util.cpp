// Unit tests for the statistical-equivalence primitives (tests/stat_util.h):
// the harness in test_sim_equivalence.cpp is only as trustworthy as these
// helpers, so they are validated on distributions with known answers.
#include "stat_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace commsched::testing {
namespace {

std::vector<double> UniformSample(std::uint64_t seed, std::size_t n, double shift = 0.0) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.NextDouble() + shift;
  return xs;
}

TEST(StatUtil, SummarizeKnownValues) {
  const SampleStats s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  // Unbiased variance of {1,2,3,4} is 5/3.
  EXPECT_NEAR(s.variance, 5.0 / 3.0, 1e-12);
}

TEST(StatUtil, NormalQuantileMatchesTables) {
  EXPECT_NEAR(NormalQuantileTwoSided(0.05), 1.959964, 1e-4);
  EXPECT_NEAR(NormalQuantileTwoSided(0.01), 2.575829, 1e-4);
  EXPECT_NEAR(NormalQuantileTwoSided(0.3173), 1.0, 1e-3);
}

TEST(StatUtil, StudentTQuantileAboveNormalAndConverges) {
  // t quantiles dominate z and approach it as df grows.
  const double z = NormalQuantileTwoSided(0.05);
  EXPECT_GT(StudentTQuantileTwoSided(0.05, 10.0), z);
  EXPECT_NEAR(StudentTQuantileTwoSided(0.05, 1e6), z, 1e-4);
  // t_{0.975, 10} = 2.2281 (table value); Cornish-Fisher is good to ~1%.
  EXPECT_NEAR(StudentTQuantileTwoSided(0.05, 10.0), 2.2281, 0.03);
}

TEST(StatUtil, WelchAcceptsSameDistribution) {
  const auto a = UniformSample(1, 400);
  const auto b = UniformSample(2, 400);
  EXPECT_TRUE(MeansEquivalent(a, b, 0.01, /*margin=*/0.0));
}

TEST(StatUtil, WelchRejectsShiftedMean) {
  const auto a = UniformSample(3, 400);
  const auto b = UniformSample(4, 400, /*shift=*/0.2);
  // Shift 0.2 vs standard error ~0.02: unambiguous at alpha = 0.01.
  EXPECT_FALSE(MeansEquivalent(a, b, 0.01, /*margin=*/0.0));
  // A margin that covers the shift restores equivalence.
  EXPECT_TRUE(MeansEquivalent(a, b, 0.01, /*margin=*/0.25));
}

TEST(StatUtil, WelchHandlesUnequalSizesAndVariances) {
  const auto a = UniformSample(5, 50);
  auto b = UniformSample(6, 2000);
  for (double& x : b) x = 0.5 + (x - 0.5) * 3.0;  // same mean, 9x variance
  EXPECT_TRUE(MeansEquivalent(a, b, 0.01, /*margin=*/0.0));
  const WelchResult r = WelchMeanDifference(a, b, 0.01);
  EXPECT_GT(r.df, 2.0);
  EXPECT_LT(r.df, static_cast<double>(a.size() + b.size()));
}

TEST(StatUtil, WelchConstantSamplesCollapse) {
  const std::vector<double> a = {2.0, 2.0, 2.0};
  const std::vector<double> b = {2.0, 2.0, 2.0, 2.0};
  const WelchResult r = WelchMeanDifference(a, b, 0.05);
  EXPECT_DOUBLE_EQ(r.mean_diff, 0.0);
  EXPECT_DOUBLE_EQ(r.half_width, 0.0);
  EXPECT_TRUE(MeansEquivalent(a, b, 0.05, 0.0));
}

TEST(StatUtil, KsStatisticKnownValues) {
  // Disjoint supports: the CDF gap reaches 1.
  EXPECT_DOUBLE_EQ(KsStatistic({1.0, 2.0}, {5.0, 6.0}), 1.0);
  // Identical samples: gap 0.
  EXPECT_DOUBLE_EQ(KsStatistic({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}), 0.0);
  // {1,3} vs {2,4}: max gap 1/2 (after 1: 1/2 vs 0).
  EXPECT_DOUBLE_EQ(KsStatistic({1.0, 3.0}, {2.0, 4.0}), 0.5);
}

TEST(StatUtil, KsAcceptsSameDistribution) {
  const auto a = UniformSample(7, 2000);
  const auto b = UniformSample(8, 2000);
  EXPECT_TRUE(DistributionsEquivalent(a, b, 0.01));
}

TEST(StatUtil, KsRejectsShiftedDistribution) {
  const auto a = UniformSample(9, 2000);
  const auto b = UniformSample(10, 2000, /*shift=*/0.2);
  // Bound at alpha = 0.01, n = m = 2000 is ~0.0515 << 0.2 true gap.
  EXPECT_GT(KsStatistic(a, b), KsBound(a.size(), b.size(), 0.01));
  EXPECT_FALSE(DistributionsEquivalent(a, b, 0.01));
}

TEST(StatUtil, KsBoundShrinksWithSamples) {
  EXPECT_GT(KsBound(100, 100, 0.05), KsBound(10000, 10000, 0.05));
  // Canonical value: c(0.05) = 1.358, bound = c * sqrt((n+m)/(nm)).
  EXPECT_NEAR(KsBound(100, 100, 0.05), 1.358 * std::sqrt(0.02), 1e-3);
}

TEST(StatUtil, FalsePositiveRateIsNearAlpha) {
  // Repeated same-distribution pairs should fail at roughly rate alpha;
  // with alpha = 0.05 over 200 trials, 25+ failures would be a broken bound
  // (nominal mean 10); 0 failures would mean it is far too lax.
  int ks_failures = 0;
  for (std::uint64_t t = 0; t < 200; ++t) {
    const auto a = UniformSample(1000 + 2 * t, 300);
    const auto b = UniformSample(1001 + 2 * t, 300);
    if (!DistributionsEquivalent(a, b, 0.05)) ++ks_failures;
  }
  EXPECT_LT(ks_failures, 25);
}

}  // namespace
}  // namespace commsched::testing
