// Multilevel mapping pipeline invariants (sched/multilevel/, DESIGN.md §13).
//
// The structural invariants the pipeline's correctness rests on:
//   * heavy-edge matching is an involution that respects the size cap,
//   * contraction conserves total edge weight (coarse + absorbed == fine)
//     and total vertex size,
//   * every uncoarsening level's refined cost is <= its projected cost
//     (refinement applies only strictly improving moves),
//   * the final assignment is feasible (max_load <= hosts per switch) and
//     deterministic in the seed.
#include "sched/multilevel/multilevel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "distance/distance_table.h"
#include "quality/comm_graph.h"
#include "routing/updown.h"
#include "sched/multilevel/coarsen.h"
#include "sched/scheduler.h"
#include "topology/library.h"
#include "workload/procgen.h"

namespace commsched {
namespace {

using sched::ml::Coarsen;
using sched::ml::CoarsenOptions;
using sched::ml::Contract;
using sched::ml::Contraction;
using sched::ml::HeavyEdgeMatching;
using sched::ml::MapMultilevel;
using sched::ml::MatchingOptions;
using sched::ml::MultilevelOptions;
using sched::ml::MultilevelResult;

constexpr double kTol = 1e-9;

TEST(Multilevel, MatchingIsInvolutionAndRespectsSizeCap) {
  const qual::CommGraph graph = work::MakeRandomComm(80, 4, 11);
  MatchingOptions options;
  options.max_vertex_size = 1;  // nothing may merge
  const std::vector<std::size_t> capped = HeavyEdgeMatching(graph, options);
  for (std::size_t v = 0; v < capped.size(); ++v) EXPECT_EQ(capped[v], v);

  options.max_vertex_size = 2;
  const std::vector<std::size_t> match = HeavyEdgeMatching(graph, options);
  std::size_t matched = 0;
  for (std::size_t v = 0; v < match.size(); ++v) {
    EXPECT_EQ(match[match[v]], v);  // involution
    if (match[v] != v) ++matched;
  }
  EXPECT_GT(matched, 0u);  // a connected-ish graph always matches something
}

TEST(Multilevel, ContractionConservesWeightAndSize) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const qual::CommGraph graph = work::MakeRandomComm(60, 5, seed);
    MatchingOptions options;
    options.max_vertex_size = 8;
    options.rng_seed = seed;
    const Contraction level = Contract(graph, HeavyEdgeMatching(graph, options));

    EXPECT_NEAR(level.coarse.TotalEdgeWeight() + level.absorbed_weight,
                graph.TotalEdgeWeight(), kTol)
        << "seed=" << seed;
    EXPECT_EQ(level.coarse.total_vertex_size(), graph.total_vertex_size());
    EXPECT_LT(level.coarse.vertex_count(), graph.vertex_count());
    for (std::size_t v = 0; v < graph.vertex_count(); ++v) {
      ASSERT_LT(level.coarse_of_fine[v], level.coarse.vertex_count());
    }
  }
}

TEST(Multilevel, CoarsenReachesTargetAndChainsProjections) {
  const qual::CommGraph graph = work::MakeGridComm(400);
  CoarsenOptions options;
  options.target_vertices = 50;
  options.max_vertex_size = 16;
  const std::vector<Contraction> hierarchy = Coarsen(graph, options);
  ASSERT_FALSE(hierarchy.empty());
  EXPECT_LE(hierarchy.back().coarse.vertex_count(), 2u * options.target_vertices);
  // Weight conservation composes across the whole hierarchy.
  double absorbed = 0.0;
  for (const Contraction& level : hierarchy) absorbed += level.absorbed_weight;
  EXPECT_NEAR(hierarchy.back().coarse.TotalEdgeWeight() + absorbed,
              graph.TotalEdgeWeight(), kTol);
}

TEST(Multilevel, MapIsFeasibleAndPerLevelMonotone) {
  const topo::SwitchGraph fabric = topo::MakeTorus3D(3, 3, 3, 8);
  const dist::DistanceTable table = dist::DistanceTable::BuildGraphHops(fabric);
  const qual::CommGraph processes = work::MakeGridComm(200);

  const MultilevelResult result = MapMultilevel(processes, table, 8, {});

  ASSERT_EQ(result.switch_of_process.size(), 200u);
  for (std::size_t s : result.switch_of_process) EXPECT_LT(s, fabric.switch_count());
  EXPECT_LE(result.max_load, 8u);
  ASSERT_FALSE(result.level_stats.empty());
  for (const sched::ml::LevelStats& stats : result.level_stats) {
    EXPECT_LE(stats.cost_after, stats.cost_before + kTol);
  }
  // The ledger's finest level matches the returned result.
  EXPECT_NEAR(result.level_stats.back().cost_after, result.cost, kTol);
  EXPECT_GE(result.normalized, 0.0);
}

TEST(Multilevel, DeterministicInTheSeed) {
  const topo::SwitchGraph fabric = topo::MakeFatTree(4, 16);
  const dist::DistanceTable table = dist::DistanceTable::BuildGraphHops(fabric);
  const qual::CommGraph processes = work::MakeRandomComm(300, 4, 5);

  MultilevelOptions options;
  options.rng_seed = 42;
  const MultilevelResult a = MapMultilevel(processes, table, 16, options);
  const MultilevelResult b = MapMultilevel(processes, table, 16, options);
  EXPECT_EQ(a.switch_of_process, b.switch_of_process);
  EXPECT_EQ(a.cost, b.cost);

  options.rng_seed = 43;
  const MultilevelResult c = MapMultilevel(processes, table, 16, options);
  EXPECT_LE(c.max_load, 16u);  // a different seed is still feasible
}

TEST(Multilevel, EngineRefinementImprovesOnGreedy) {
  // Small instance: the coarsest graph fits the engine, which must never
  // end above the greedy start it was given.
  const topo::SwitchGraph fabric = topo::MakeMesh2D(4, 4, 4);
  const dist::DistanceTable table = dist::DistanceTable::BuildGraphHops(fabric);
  const qual::CommGraph processes = work::MakeRingComm(64);

  const MultilevelResult result = MapMultilevel(processes, table, 4, {});
  EXPECT_GT(result.engine_seeds, 0u);
  ASSERT_FALSE(result.level_stats.empty());
  EXPECT_LE(result.level_stats.front().cost_after,
            result.level_stats.front().cost_before + kTol);
}

TEST(Multilevel, SchedulerFacadeMatchesDirectCall) {
  const topo::SwitchGraph fabric = topo::MakeMixedDensity16(4);
  const route::UpDownRouting routing(fabric);
  const sched::CommAwareScheduler scheduler(fabric, routing);
  const qual::CommGraph processes = work::MakeGridComm(48);

  const MultilevelResult via_scheduler = scheduler.ScheduleProcesses(processes);
  const MultilevelResult direct =
      MapMultilevel(processes, dist::DistanceTable::Build(routing), 4, {});
  EXPECT_EQ(via_scheduler.switch_of_process, direct.switch_of_process);
  EXPECT_EQ(via_scheduler.cost, direct.cost);
}

TEST(Multilevel, RejectsDegenerateConfigurations) {
  const dist::DistanceTable table(4, 1.0);
  const qual::CommGraph small = work::MakeRingComm(8);

  EXPECT_THROW(MapMultilevel(small, table, 0, {}), ConfigError);  // zero hosts
  EXPECT_THROW(MapMultilevel(work::MakeRingComm(100), table, 2, {}),
               ConfigError);  // 100 > 4 switches * 2 hosts
  MultilevelOptions zero_seeds;
  zero_seeds.seeds = 0;
  EXPECT_THROW(MapMultilevel(small, table, 4, zero_seeds), ConfigError);
  MultilevelOptions zero_rounds;
  zero_rounds.refine_rounds = 0;
  EXPECT_THROW(MapMultilevel(small, table, 4, zero_rounds), ConfigError);

  // A super-vertex bigger than a switch can never be placed.
  const qual::CommGraph fat =
      qual::CommGraph::FromEdges(2, {{0, 1, 1.0}}, {5, 1});
  EXPECT_THROW(MapMultilevel(fat, table, 4, {}), ConfigError);
}

TEST(Multilevel, LargeFabricScaleSmoke) {
  // 512-switch torus + 10k processes: exercises the hops distance path and
  // the engine-skipped (greedy + refinement) regime end to end.
  const topo::SwitchGraph fabric = topo::MakeTorus3D(8, 8, 8, 32);
  const dist::DistanceTable table = dist::DistanceTable::BuildGraphHops(fabric);
  const qual::CommGraph processes = work::MakeGridComm(10000);

  MultilevelOptions options;
  // The size cap floors coarsening at 10000/32 > 256 vertices, so this
  // keeps the test in the greedy + refinement regime (no engine scan).
  options.engine_max_vertices = 256;
  const MultilevelResult result = MapMultilevel(processes, table, 32, options);
  EXPECT_LE(result.max_load, 32u);
  EXPECT_GT(result.levels, 0u);
  for (const sched::ml::LevelStats& stats : result.level_stats) {
    EXPECT_LE(stats.cost_after, stats.cost_before + kTol);
  }
  // A grid mapped onto a torus must beat a random-quality placement.
  EXPECT_LT(result.normalized, 0.5);
}

}  // namespace
}  // namespace commsched
