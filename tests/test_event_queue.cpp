// Property tests for the event-engine primitives (ISSUE 6 satellite):
// EventQueue ordering, ActiveSet sweep semantics, FlitPool double-free
// detection, GeometricGap distribution, and whole-run flit conservation
// in both execution modes (with and without fault plans).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "faults/fault_plan.h"
#include "routing/updown.h"
#include "simnet/arrivals.h"
#include "simnet/event_queue.h"
#include "simnet/flit_pool.h"
#include "simnet/simulator.h"
#include "topology/generator.h"
#include "workload/workload.h"

namespace commsched::sim {
namespace {

// ---- EventQueue ----------------------------------------------------------

TEST(EventQueue, PopsInNondecreasingCycleOrder) {
  Rng rng(11);
  EventQueue queue;
  std::vector<std::pair<std::size_t, std::size_t>> pushed;
  for (std::size_t i = 0; i < 5000; ++i) {
    const auto cycle = static_cast<std::size_t>(rng.NextInt(0, 999));
    const auto id = static_cast<std::size_t>(rng.NextInt(0, 63));
    queue.Push(cycle, id);
    pushed.emplace_back(cycle, id);
  }
  // Interleave pops with pushes to exercise heap maintenance.
  std::size_t last_cycle = 0;
  std::size_t popped = 0;
  while (!queue.Empty()) {
    const std::size_t cycle = queue.NextCycle();
    EXPECT_GE(cycle, last_cycle) << "event fired out of order";
    last_cycle = cycle;
    (void)queue.Pop();
    ++popped;
    if (popped % 7 == 0 && popped < 4000) {
      queue.Push(last_cycle + static_cast<std::size_t>(rng.NextInt(0, 99)),
                 static_cast<std::size_t>(rng.NextInt(0, 63)));
      pushed.emplace_back(0, 0);  // count only
    }
  }
  EXPECT_EQ(popped, pushed.size());
}

TEST(EventQueue, SameCycleBreaksTiesById) {
  EventQueue queue;
  queue.Push(7, 3);
  queue.Push(7, 1);
  queue.Push(5, 9);
  queue.Push(7, 2);
  EXPECT_EQ(queue.Pop(), 9u);
  EXPECT_EQ(queue.Pop(), 1u);
  EXPECT_EQ(queue.Pop(), 2u);
  EXPECT_EQ(queue.Pop(), 3u);
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueue, NextCycleOnEmptyThrows) {
  EventQueue queue;
  EXPECT_THROW((void)queue.NextCycle(), ContractError);
  EXPECT_THROW((void)queue.Pop(), ContractError);
}

// ---- ActiveSet -----------------------------------------------------------

TEST(ActiveSet, AddContainsCountAndClear) {
  ActiveSet set;
  set.Reset(200);
  EXPECT_FALSE(set.Any());
  set.Add(0);
  set.Add(63);
  set.Add(64);
  set.Add(199);
  set.Add(199);  // idempotent
  EXPECT_EQ(set.Count(), 4u);
  EXPECT_TRUE(set.Contains(64));
  EXPECT_FALSE(set.Contains(1));
  set.ClearAll();
  EXPECT_FALSE(set.Any());
  EXPECT_EQ(set.Count(), 0u);
}

TEST(ActiveSet, SweepVisitsAscendingAndHonorsKeep) {
  ActiveSet set;
  set.Reset(300);
  for (const std::size_t i : {5u, 70u, 71u, 200u, 299u}) set.Add(i);
  std::vector<std::size_t> visited;
  set.Sweep([&](std::size_t i) {
    visited.push_back(i);
    return i == 70;  // keep only 70 active
  });
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
  EXPECT_EQ(visited.size(), 5u);
  EXPECT_EQ(set.Count(), 1u);
  EXPECT_TRUE(set.Contains(70));
}

TEST(ActiveSet, SweepSeesForwardActivationsSameSweepOnce) {
  // Activating an index ahead of the cursor gets it visited in the same
  // sweep, but each index at most once per sweep (mirrors the cycle
  // engine's single ascending scan per phase).
  ActiveSet set;
  set.Reset(128);
  set.Add(3);
  std::vector<std::size_t> visited;
  set.Sweep([&](std::size_t i) {
    visited.push_back(i);
    if (i == 3) set.Add(10);   // forward: visited this sweep
    if (i == 10) set.Add(3);   // backward: deferred to the next sweep
    return false;
  });
  EXPECT_EQ(visited, (std::vector<std::size_t>{3, 10}));
  // The backward activation survived the sweep.
  EXPECT_TRUE(set.Contains(3));
  EXPECT_EQ(set.Count(), 1u);
}

// ---- FlitPool ------------------------------------------------------------

TEST(FlitPool, RecyclesSlotsThroughFreeList) {
  FlitPool pool;
  const std::uint32_t a = pool.Allocate(1, 0);
  const std::uint32_t b = pool.Allocate(1, 1);
  EXPECT_EQ(pool.live(), 2u);
  pool.Free(a);
  EXPECT_EQ(pool.live(), 1u);
  const std::uint32_t c = pool.Allocate(2, 0);
  EXPECT_EQ(c, a) << "freed slot should be recycled";
  EXPECT_EQ(pool.msg(c), 2u);
  EXPECT_EQ(pool.capacity(), 2u);
  pool.Free(b);
  pool.Free(c);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(FlitPool, DoubleFreeThrows) {
  FlitPool pool;
  const std::uint32_t id = pool.Allocate(0, 0);
  pool.Free(id);
  EXPECT_THROW(pool.Free(id), ContractError);
}

TEST(FlitPool, FreeingUnallocatedSlotThrows) {
  FlitPool pool;
  (void)pool.Allocate(0, 0);
  EXPECT_THROW(pool.Free(7), ContractError);  // outside the pool
}

// ---- GeometricGap --------------------------------------------------------

TEST(GeometricGap, MeanMatchesOneOverP) {
  Rng rng(21);
  for (const double p : {0.5, 0.1, 0.01}) {
    const std::size_t n = 40000;
    double sum = 0.0;
    std::size_t min_gap = SIZE_MAX;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t gap = GeometricGap(rng, p);
      sum += static_cast<double>(gap);
      min_gap = std::min(min_gap, gap);
    }
    const double mean = sum / static_cast<double>(n);
    // Geometric mean is 1/p with std dev ~ 1/p; 5 sigma of the sample mean.
    EXPECT_NEAR(mean, 1.0 / p, 5.0 / (p * std::sqrt(static_cast<double>(n))));
    EXPECT_GE(min_gap, 1u);
  }
}

TEST(GeometricGap, CertainArrivalEveryCycle) {
  Rng rng(22);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(GeometricGap(rng, 1.0), 1u);
}

TEST(GeometricGap, RejectsOutOfRangeProbability) {
  Rng rng(23);
  EXPECT_THROW((void)GeometricGap(rng, 0.0), ContractError);
  EXPECT_THROW((void)GeometricGap(rng, 1.5), ContractError);
}

// ---- conservation --------------------------------------------------------

class Conservation : public ::testing::TestWithParam<ExecMode> {};

void ExpectConserved(const NetworkSimulator& simulator) {
  const SimTotals t = simulator.Totals();
  EXPECT_EQ(t.flits_injected, t.flits_delivered + t.flits_dropped + t.flits_in_network)
      << "flit conservation violated";
  EXPECT_EQ(t.pool_live, t.flits_in_network)
      << "pool live count out of sync with the network";
  EXPECT_GE(t.messages_lost, t.messages_born_dead);
}

TEST_P(Conservation, HoldsAcrossLoads) {
  topo::IrregularTopologyOptions options{16, 4, 3, 1, 1000};
  const auto graph = topo::GenerateIrregularTopology(options);
  const route::UpDownRouting routing(graph);
  const auto workload = work::Workload::Uniform(4, graph.host_count() / 4);
  Rng rng(5);
  const auto mapping = work::ProcessMapping::RandomAligned(graph, workload, rng);
  const TrafficPattern pattern(graph, workload, mapping);
  SimConfig config;
  config.exec_mode = GetParam();
  config.warmup_cycles = 1000;
  config.measure_cycles = 3000;
  NetworkSimulator simulator(graph, routing, pattern, config);
  for (const double rate : {0.05, 0.3, 1.5}) {
    const SimMetrics metrics = simulator.Run(rate);
    ExpectConserved(simulator);
    EXPECT_GT(metrics.flits_delivered, 0u);
  }
}

TEST_P(Conservation, HoldsUnderFaults) {
  topo::IrregularTopologyOptions options{16, 4, 3, 2, 1000};
  const auto graph = topo::GenerateIrregularTopology(options);
  const route::UpDownRouting routing(graph);
  const auto workload = work::Workload::Uniform(4, graph.host_count() / 4);
  Rng rng(6);
  const auto mapping = work::ProcessMapping::RandomAligned(graph, workload, rng);
  const TrafficPattern pattern(graph, workload, mapping);
  const auto plan = faults::FaultPlan::FromEvents({
      {1500, faults::FaultKind::kSwitchDown, 0, 0, 3},
      {2500, faults::FaultKind::kSwitchUp, 0, 0, 3},
  });
  SimConfig config;
  config.exec_mode = GetParam();
  config.warmup_cycles = 1000;
  config.measure_cycles = 3000;
  config.fault_plan = &plan;
  NetworkSimulator simulator(graph, routing, pattern, config);
  const SimMetrics metrics = simulator.Run(0.3);
  ExpectConserved(simulator);
  EXPECT_EQ(metrics.fault_events_applied, 2u);
}

INSTANTIATE_TEST_SUITE_P(BothModes, Conservation,
                         ::testing::Values(ExecMode::kCycle, ExecMode::kEvent),
                         [](const auto& info) {
                           return info.param == ExecMode::kCycle ? "cycle" : "event";
                         });

}  // namespace
}  // namespace commsched::sim
