// Prometheus text exposition (obs/prometheus.h): name mangling, per-family
// rendering rules (counter suffixes, labeled link family, timer summaries,
// cumulative histogram buckets), rolling-view gauges and extra gauges.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/obs.h"
#include "obs/prometheus.h"
#include "obs/rolling.h"

namespace commsched {
namespace {

using obs::PrometheusName;
using obs::PrometheusOptions;
using obs::Registry;
using obs::RenderPrometheus;

bool Contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

/// Options with a fixed clock so renders never touch the real NowNanos().
PrometheusOptions AtTime(std::uint64_t now_ns) {
  PrometheusOptions options;
  options.now_ns = now_ns;
  return options;
}

TEST(PrometheusNameTest, ManglesNonIdentifierCharacters) {
  EXPECT_EQ(PrometheusName("commsched_", "svc.latency_ns"), "commsched_svc_latency_ns");
  EXPECT_EQ(PrometheusName("commsched_", "a.b-c d"), "commsched_a_b_c_d");
  EXPECT_EQ(PrometheusName("", "plain"), "plain");
}

TEST(PrometheusRenderTest, CountersGetTotalSuffixAndType) {
  Registry registry;
  registry.GetCounter("svc.requests").Add(42);
  const std::string text = RenderPrometheus(registry, AtTime(1));
  EXPECT_TRUE(Contains(text, "# TYPE commsched_svc_requests_total counter\n"));
  EXPECT_TRUE(Contains(text, "commsched_svc_requests_total 42\n"));
}

TEST(PrometheusRenderTest, LinkCountersCollapseIntoOneLabeledFamily) {
  Registry registry;
  registry.GetCounter("link.util.3.7").Add(128);
  registry.GetCounter("link.util.7.3").Add(96);
  const std::string text = RenderPrometheus(registry, AtTime(1));
  // Exactly one TYPE header for the whole family.
  const std::string header = "# TYPE commsched_link_util_flits_total counter\n";
  EXPECT_EQ(text.find(header), text.rfind(header));
  EXPECT_TRUE(Contains(text, "commsched_link_util_flits_total{src=\"3\",dst=\"7\"} 128\n"));
  EXPECT_TRUE(Contains(text, "commsched_link_util_flits_total{src=\"7\",dst=\"3\"} 96\n"));
  // No per-link scalar families leak out.
  EXPECT_FALSE(Contains(text, "commsched_link_util_3_7"));
}

TEST(PrometheusRenderTest, TimersRenderAsSecondsSummaries) {
  Registry registry;
  registry.GetTimer("exec.search").RecordNanos(2'500'000'000ull);
  const std::string text = RenderPrometheus(registry, AtTime(1));
  EXPECT_TRUE(Contains(text, "# TYPE commsched_exec_search_seconds summary\n"));
  EXPECT_TRUE(Contains(text, "commsched_exec_search_seconds_sum 2.5\n"));
  EXPECT_TRUE(Contains(text, "commsched_exec_search_seconds_count 1\n"));
}

TEST(PrometheusRenderTest, HistogramsRenderCumulativeLog2Buckets) {
  Registry registry;
  obs::Histogram& hist = registry.GetHistogram("svc.latency_ns");
  hist.Record(1);  // bucket 1, le = 1
  hist.Record(5);  // bucket 3, le = 7
  hist.Record(6);  // bucket 3
  const std::string text = RenderPrometheus(registry, AtTime(1));
  EXPECT_TRUE(Contains(text, "# TYPE commsched_svc_latency_ns histogram\n"));
  EXPECT_TRUE(Contains(text, "commsched_svc_latency_ns_bucket{le=\"1\"} 1\n"));
  // Cumulative: the le="7" bucket includes the le="1" one.
  EXPECT_TRUE(Contains(text, "commsched_svc_latency_ns_bucket{le=\"7\"} 3\n"));
  EXPECT_TRUE(Contains(text, "commsched_svc_latency_ns_bucket{le=\"+Inf\"} 3\n"));
  EXPECT_TRUE(Contains(text, "commsched_svc_latency_ns_sum 12\n"));
  EXPECT_TRUE(Contains(text, "commsched_svc_latency_ns_count 3\n"));
}

TEST(PrometheusRenderTest, RollingViewsRenderAsGauges) {
  Registry registry;
  obs::RollingRegistry rolling;
  rolling.GetCounter("svc.requests").Add(10, 500'000'000);
  rolling.GetHistogram("svc.latency_ns").Record(1000, 500'000'000);
  PrometheusOptions options;
  options.now_ns = 500'000'000;
  options.rolling = &rolling;
  const std::string text = RenderPrometheus(registry, options);
  EXPECT_TRUE(Contains(text, "# TYPE commsched_svc_requests_rate gauge\n"));
  EXPECT_TRUE(Contains(text, "commsched_svc_requests_rate 20\n"));  // 10 in 0.5 s
  EXPECT_TRUE(Contains(text, "# TYPE commsched_svc_latency_ns_window gauge\n"));
  EXPECT_TRUE(Contains(text, "commsched_svc_latency_ns_window{q=\"0.5\"}"));
  EXPECT_TRUE(Contains(text, "commsched_svc_latency_ns_window{q=\"0.99\"}"));
  EXPECT_TRUE(Contains(text, "commsched_svc_latency_ns_window_count 1\n"));
}

TEST(PrometheusRenderTest, ExtraGaugesAreMangledAndEmitted) {
  Registry registry;
  PrometheusOptions options;
  options.now_ns = 1;
  options.extra_gauges["svc.queue_depth"] = 3.0;
  const std::string text = RenderPrometheus(registry, options);
  EXPECT_TRUE(Contains(text, "# TYPE commsched_svc_queue_depth gauge\n"));
  EXPECT_TRUE(Contains(text, "commsched_svc_queue_depth 3\n"));
}

TEST(PrometheusRenderTest, EmptyRegistryRendersEmpty) {
  Registry registry;
  EXPECT_EQ(RenderPrometheus(registry, AtTime(1)), "");
}

TEST(PrometheusRenderTest, CustomPrefix) {
  Registry registry;
  registry.GetCounter("x").Add(1);
  PrometheusOptions options;
  options.prefix = "other_";
  options.now_ns = 1;
  const std::string text = RenderPrometheus(registry, options);
  EXPECT_TRUE(Contains(text, "other_x_total 1\n"));
  EXPECT_FALSE(Contains(text, "commsched_"));
}

}  // namespace
}  // namespace commsched
