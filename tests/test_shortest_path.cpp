#include "routing/shortest_path.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "routing/updown.h"
#include "topology/generator.h"
#include "topology/library.h"

namespace commsched::route {
namespace {

using topo::MakeMesh2D;
using topo::MakeRing;

TEST(ShortestPath, DistancesMatchBfs) {
  const topo::SwitchGraph mesh = MakeMesh2D(3, 3);
  const ShortestPathRouting routing(mesh);
  const auto hops = mesh.AllPairsHopDistance();
  for (topo::SwitchId s = 0; s < 9; ++s) {
    for (topo::SwitchId t = 0; t < 9; ++t) {
      EXPECT_EQ(routing.MinimalDistance(s, t), hops[s][t]);
    }
  }
}

TEST(ShortestPath, PhaseIsAlwaysUp) {
  const topo::SwitchGraph ring = MakeRing(5);
  const ShortestPathRouting routing(ring);
  for (topo::LinkId l = 0; l < ring.link_count(); ++l) {
    EXPECT_EQ(routing.ArrivalPhase(l, ring.link(l).a), Phase::kUp);
    EXPECT_EQ(routing.ArrivalPhase(l, ring.link(l).b), Phase::kUp);
  }
}

TEST(ShortestPath, NextHopsDecreaseDistance) {
  const topo::SwitchGraph mesh = MakeMesh2D(4, 4);
  const ShortestPathRouting routing(mesh);
  for (topo::SwitchId s = 0; s < 16; ++s) {
    for (topo::SwitchId t = 0; t < 16; ++t) {
      if (s == t) continue;
      for (const NextHop& hop : routing.NextHops(s, t, Phase::kUp)) {
        EXPECT_EQ(routing.MinimalDistance(hop.next, t) + 1, routing.MinimalDistance(s, t));
      }
    }
  }
}

TEST(ShortestPath, MeshOffersMultipleMinimalRoutes) {
  const topo::SwitchGraph mesh = MakeMesh2D(3, 3);
  const ShortestPathRouting routing(mesh);
  // From corner (0) to opposite corner (8): two first hops exist.
  EXPECT_EQ(routing.NextHops(0, 8, Phase::kUp).size(), 2u);
}

TEST(ShortestPath, EnumerateMinimalPathsCountOnMesh) {
  const topo::SwitchGraph mesh = MakeMesh2D(3, 3);
  const ShortestPathRouting routing(mesh);
  // Corner to corner on a 2x2-step grid: C(4,2) = 6 monotone paths.
  const auto paths = EnumerateMinimalPaths(routing, 0, 8);
  EXPECT_EQ(paths.size(), 6u);
}

TEST(ShortestPath, LinksOnMinimalPathsOnMesh) {
  const topo::SwitchGraph mesh = MakeMesh2D(3, 3);
  const ShortestPathRouting routing(mesh);
  // 0 -> 8 monotone region covers every link between the 9 switches that
  // moves right or down: that is all 12 links of the mesh.
  const auto links = routing.LinksOnMinimalPaths(0, 8);
  EXPECT_EQ(links.size(), 12u);
  // 0 -> 1 is a single link.
  EXPECT_EQ(routing.LinksOnMinimalPaths(0, 1).size(), 1u);
}

TEST(ShortestPath, NeverLongerThanUpDown) {
  topo::IrregularTopologyOptions options;
  options.switch_count = 16;
  options.seed = 13;
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const ShortestPathRouting sp(g);
  const UpDownRouting ud(g);
  for (topo::SwitchId s = 0; s < 16; ++s) {
    for (topo::SwitchId t = 0; t < 16; ++t) {
      EXPECT_LE(sp.MinimalDistance(s, t), ud.MinimalDistance(s, t));
    }
  }
}

TEST(ShortestPath, DisconnectedRejected) {
  topo::SwitchGraph g(3, 1);
  g.AddLink(0, 1);
  EXPECT_THROW(ShortestPathRouting routing(g), commsched::ContractError);
}

}  // namespace
}  // namespace commsched::route
