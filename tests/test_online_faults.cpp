// OnlineScheduler degraded-mode behavior (ISSUE 3 tentpole part 3 +
// satellite: Release / double-Allocate error paths, FragmentationIndex
// across fail/restore).
#include <gtest/gtest.h>

#include "distance/distance_table.h"
#include "sched/online.h"
#include "routing/updown.h"
#include "topology/library.h"

namespace commsched::sched {
namespace {

struct Fixture {
  topo::SwitchGraph graph;
  route::UpDownRouting routing;
  dist::DistanceTable table;

  Fixture()
      : graph(topo::MakeFourRingsOfSix()),
        routing(graph),
        table(dist::DistanceTable::Build(routing)) {}
};

TEST(OnlineFaults, FailFreeSwitchJustShrinksThePool) {
  Fixture f;
  OnlineScheduler scheduler(f.graph, f.table);
  const RemapOutcome outcome = scheduler.FailSwitch(3);
  EXPECT_TRUE(outcome.remapped.empty());
  EXPECT_TRUE(outcome.pending.empty());
  EXPECT_TRUE(scheduler.SwitchFailed(3));
  EXPECT_EQ(scheduler.FreeSwitchCount(), 23u);
  // Idempotent: failing again changes nothing.
  (void)scheduler.FailSwitch(3);
  EXPECT_EQ(scheduler.FreeSwitchCount(), 23u);
  // Nothing can be placed on the dead switch.
  const auto all = scheduler.Allocate("all", 23);
  ASSERT_TRUE(all.has_value());
  for (const std::size_t s : *all) EXPECT_NE(s, 3u);
}

TEST(OnlineFaults, FailAllocatedSwitchEvictsAndRemaps) {
  Fixture f;
  OnlineScheduler scheduler(f.graph, f.table);
  const auto a = scheduler.Allocate("a", 6);
  ASSERT_TRUE(a.has_value());
  const std::size_t victim = a->front();
  const RemapOutcome outcome = scheduler.FailSwitch(victim);
  // Plenty of capacity elsewhere: the app comes back immediately...
  ASSERT_EQ(outcome.remapped, (std::vector<std::string>{"a"}));
  EXPECT_TRUE(outcome.pending.empty());
  const auto& replacement = scheduler.allocations().at("a");
  EXPECT_EQ(replacement.size(), 6u);
  // ...on healthy switches only.
  for (const std::size_t s : replacement) EXPECT_NE(s, victim);
  EXPECT_EQ(scheduler.FreeSwitchCount(), 24u - 6u - 1u);
}

TEST(OnlineFaults, EvictionWithoutCapacityGoesPendingAndRetries) {
  Fixture f;
  OnlineScheduler scheduler(f.graph, f.table);
  ASSERT_TRUE(scheduler.Allocate("big", 20).has_value());
  ASSERT_TRUE(scheduler.Allocate("small", 4).has_value());
  const std::size_t victim = scheduler.allocations().at("big").front();

  const RemapOutcome evicted = scheduler.FailSwitch(victim);
  ASSERT_EQ(evicted.pending, (std::vector<std::string>{"big"}));
  EXPECT_TRUE(evicted.remapped.empty());
  EXPECT_EQ(scheduler.PendingApplications(), (std::vector<std::string>{"big"}));
  // While pending, the name is reserved.
  EXPECT_THROW((void)scheduler.Allocate("big", 20), ContractError);

  // Releasing "small" frees capacity; the retry wave re-places "big" on the
  // 23 healthy switches.
  scheduler.Release("small");
  EXPECT_TRUE(scheduler.PendingApplications().empty());
  ASSERT_EQ(scheduler.allocations().count("big"), 1u);
  for (const std::size_t s : scheduler.allocations().at("big")) EXPECT_NE(s, victim);
}

TEST(OnlineFaults, ExponentialBackoffSkipsCooldownTicks) {
  Fixture f;
  OnlineScheduler scheduler(f.graph, f.table);
  ASSERT_TRUE(scheduler.Allocate("big", 24).has_value());
  const RemapOutcome evicted = scheduler.FailSwitch(0);
  ASSERT_EQ(evicted.pending, (std::vector<std::string>{"big"}));

  // 24 switches can never fit on 23 healthy ones: every due retry fails and
  // doubles the cooldown, so most ticks are silent.
  std::size_t attempts_seen = 0;
  for (std::size_t tick = 0; tick < 20; ++tick) {
    const RemapOutcome retry = scheduler.RetryPending();
    if (!retry.pending.empty()) ++attempts_seen;
    EXPECT_TRUE(retry.remapped.empty());
  }
  EXPECT_GE(attempts_seen, 2u);  // cooldowns 2, 4, 8, 16 -> a few due ticks
  EXPECT_LT(attempts_seen, 20u);  // but far from every tick
  EXPECT_EQ(scheduler.PendingApplications(), (std::vector<std::string>{"big"}));

  // Restoring the dead switch makes it fit again.
  const RemapOutcome restored = scheduler.RestoreSwitch(0);
  const bool back_now = restored.remapped == std::vector<std::string>{"big"};
  if (!back_now) {
    // Still cooling down; drain the backoff.
    bool back = false;
    for (std::size_t tick = 0; tick < 64 && !back; ++tick) {
      back = !scheduler.RetryPending().remapped.empty();
    }
    EXPECT_TRUE(back);
  }
  EXPECT_EQ(scheduler.allocations().at("big").size(), 24u);
}

TEST(OnlineFaults, ReleaseSkipsFailedSwitches) {
  Fixture f;
  OnlineScheduler scheduler(f.graph, f.table);
  const auto a = scheduler.Allocate("a", 6);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(scheduler.Allocate("b", 18).has_value());
  // Fail a switch held by "b": "b" is evicted and (with only the free
  // capacity of nothing) goes pending; its healthy switches return to the
  // pool, but the dead one must not.
  const std::size_t victim = scheduler.allocations().at("b").front();
  (void)scheduler.FailSwitch(victim);
  EXPECT_EQ(scheduler.FreeSwitchCount(), 17u);
  for (const std::size_t s : scheduler.FreeSwitches()) EXPECT_NE(s, victim);

  // Releasing "a" must also keep the dead switch out of the pool.
  scheduler.Release("a");
  for (const std::size_t s : scheduler.FreeSwitches()) EXPECT_NE(s, victim);
}

TEST(OnlineFaults, RestoreHealthySwitchIsANoOpTick) {
  Fixture f;
  OnlineScheduler scheduler(f.graph, f.table);
  const RemapOutcome outcome = scheduler.RestoreSwitch(5);
  EXPECT_TRUE(outcome.remapped.empty());
  EXPECT_TRUE(outcome.pending.empty());
  EXPECT_EQ(scheduler.FreeSwitchCount(), 24u);
}

TEST(OnlineFaults, FragmentationIndexAcrossFailAndRestore) {
  Fixture f;
  OnlineScheduler scheduler(f.graph, f.table);
  ASSERT_TRUE(scheduler.Allocate("a", 6).has_value());
  const double before = scheduler.FragmentationIndex();
  EXPECT_GT(before, 0.0);

  // Kill two of a's switches: each remap squeezes "a" onto what's left, and
  // the index stays finite and positive (live allocations only).
  const std::size_t v1 = scheduler.allocations().at("a")[0];
  (void)scheduler.FailSwitch(v1);
  const std::size_t v2 = scheduler.allocations().at("a")[0];
  (void)scheduler.FailSwitch(v2);
  const double degraded = scheduler.FragmentationIndex();
  EXPECT_GT(degraded, 0.0);
  ASSERT_EQ(scheduler.allocations().count("a"), 1u);

  // Restoration returns capacity; re-placing from scratch recovers a cost
  // at least as tight as the degraded placement.
  (void)scheduler.RestoreSwitch(v1);
  (void)scheduler.RestoreSwitch(v2);
  scheduler.Release("a");
  ASSERT_TRUE(scheduler.Allocate("a2", 6).has_value());
  EXPECT_LE(scheduler.FragmentationIndex(), degraded + 1e-9);
}

}  // namespace
}  // namespace commsched::sched
