#include "distance/distance_table.h"

#include <gtest/gtest.h>

#include "routing/shortest_path.h"
#include "routing/updown.h"
#include "topology/generator.h"
#include "topology/library.h"

namespace commsched::dist {
namespace {

using route::ShortestPathRouting;
using route::UpDownRouting;

TEST(DistanceTable, PathGraphMatchesHops) {
  // On a tree every pair has exactly one path: equivalent distance == hops.
  topo::SwitchGraph path(5, 1);
  for (std::size_t i = 0; i + 1 < 5; ++i) path.AddLink(i, i + 1);
  const UpDownRouting routing(path, topo::SwitchId{0});
  const DistanceTable table = DistanceTable::Build(routing, /*parallel=*/false);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(table(i, j), std::abs(static_cast<double>(i) - static_cast<double>(j)), 1e-9);
    }
  }
}

TEST(DistanceTable, SymmetricZeroDiagonal) {
  topo::IrregularTopologyOptions options;
  options.switch_count = 16;
  options.seed = 2;
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const UpDownRouting routing(g);
  const DistanceTable table = DistanceTable::Build(routing);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(table(i, i), 0.0);
    for (std::size_t j = 0; j < 16; ++j) {
      EXPECT_DOUBLE_EQ(table(i, j), table(j, i));
    }
  }
}

TEST(DistanceTable, ParallelEqualsSequential) {
  topo::IrregularTopologyOptions options;
  options.switch_count = 16;
  options.seed = 6;
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const UpDownRouting routing(g);
  const DistanceTable par = DistanceTable::Build(routing, true);
  const DistanceTable seq = DistanceTable::Build(routing, false);
  EXPECT_LE(par.MaxAbsDiff(seq), 1e-12);
}

// Property sweep: the equivalent distance never exceeds the legal hop count
// (parallel resistors only shrink), and is at least 1 for distinct switches
// reached over >= 1 link... (actually >= the parallel combination, so > 0).
class DistanceBounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistanceBounds, EquivalentDistanceBoundedByLegalHops) {
  topo::IrregularTopologyOptions options;
  options.switch_count = 14;
  options.seed = GetParam();
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const UpDownRouting routing(g);
  const DistanceTable eq = DistanceTable::Build(routing);
  const DistanceTable hops = DistanceTable::BuildHopCount(routing);
  for (std::size_t i = 0; i < g.switch_count(); ++i) {
    for (std::size_t j = 0; j < g.switch_count(); ++j) {
      EXPECT_LE(eq(i, j), hops(i, j) + 1e-9);
      if (i != j) {
        EXPECT_GT(eq(i, j), 0.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceBounds, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(DistanceTable, AdjacentSwitchesWithSingleLinkAtDistanceOne) {
  // The one-link path between adjacent switches is always the unique
  // minimal legal path, so T = 1 exactly.
  topo::IrregularTopologyOptions options;
  options.switch_count = 16;
  options.seed = 10;
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const UpDownRouting routing(g);
  const DistanceTable table = DistanceTable::Build(routing);
  for (const topo::Link& link : g.links()) {
    EXPECT_NEAR(table(link.a, link.b), 1.0, 1e-9);
  }
}

TEST(DistanceTable, CompleteGraphAllOnes) {
  const topo::SwitchGraph g = topo::MakeComplete(5);
  const ShortestPathRouting routing(g);
  const DistanceTable table = DistanceTable::Build(routing);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      if (i != j) EXPECT_NEAR(table(i, j), 1.0, 1e-9);
    }
  }
}

TEST(DistanceTable, MeshParallelPathsShrinkDistance) {
  // Corner-to-corner on a 2x2 mesh (4-cycle): two 2-hop paths in parallel
  // give equivalent distance 1 < 2 hops.
  const topo::SwitchGraph mesh = topo::MakeMesh2D(2, 2);
  const ShortestPathRouting routing(mesh);
  const DistanceTable table = DistanceTable::Build(routing);
  EXPECT_NEAR(table(0, 3), 1.0, 1e-9);
  EXPECT_NEAR(table(1, 2), 1.0, 1e-9);
}

TEST(DistanceTable, TriangleInequalityGenerallyViolated) {
  // The paper stresses the table does not define a metric space. Build the
  // classic witness: adjacent pair at distance 1 whose two-step detour is
  // shorter through parallel-path shrinkage. A 16-switch irregular network
  // almost always violates the inequality somewhere.
  std::size_t violations = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    topo::IrregularTopologyOptions options;
    options.switch_count = 16;
    options.seed = seed;
    const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
    const UpDownRouting routing(g);
    const DistanceTable table = DistanceTable::Build(routing);
    if (!table.SatisfiesTriangleInequality()) ++violations;
  }
  EXPECT_GT(violations, 0u);
}

TEST(DistanceTable, MeanSquaredDistanceMatchesDefinition) {
  DistanceTable table(3, 0.0);
  table.Set(0, 1, 1.0);
  table.Set(0, 2, 2.0);
  table.Set(1, 2, 3.0);
  EXPECT_NEAR(table.SumSquaredAllPairs(), 1.0 + 4.0 + 9.0, 1e-12);
  EXPECT_NEAR(table.MeanSquaredDistance(), 14.0 / 3.0, 1e-12);
}

TEST(DistanceTable, SetValidation) {
  DistanceTable table(3, 0.0);
  EXPECT_THROW(table.Set(0, 0, 1.0), commsched::ContractError);
  EXPECT_THROW(table.Set(0, 1, -1.0), commsched::ContractError);
  EXPECT_THROW(table.Set(0, 3, 1.0), commsched::ContractError);
  table.Set(1, 2, 5.0);
  EXPECT_DOUBLE_EQ(table(2, 1), 5.0);
}

TEST(DistanceTable, HopCountTableMatchesRouting) {
  const topo::SwitchGraph ring = topo::MakeRing(6);
  const UpDownRouting routing(ring, topo::SwitchId{0});
  const DistanceTable hops = DistanceTable::BuildHopCount(routing);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(hops(i, j), static_cast<double>(routing.MinimalDistance(i, j)));
    }
  }
}

TEST(DistanceTable, CorrelationWithHopsIsStrong) {
  topo::IrregularTopologyOptions options;
  options.switch_count = 16;
  options.seed = 9;
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const UpDownRouting routing(g);
  const DistanceTable eq = DistanceTable::Build(routing);
  const DistanceTable hops = DistanceTable::BuildHopCount(routing);
  EXPECT_GT(CorrelateTables(eq, hops), 0.8);
}

TEST(DistanceTable, CsvHasHeaderAndRows) {
  DistanceTable table(2, 1.0);
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("switch,0,1"), std::string::npos);
  EXPECT_NE(csv.find("0,0,1"), std::string::npos);
}

}  // namespace
}  // namespace commsched::dist
