// Degenerate-knob rejection (the formerly-silent no-op configurations).
//
// EngineOptions with seeds == 0 or max_iterations_per_seed == 0 used to run
// zero seeds / zero iterations and return an empty result; now every layer
// rejects them with a typed ConfigError: the SearchEngine constructor, the
// shared exec-layer knob validation both front ends call at parse time, the
// service protocol parser, and the multilevel knob validation.
#include <gtest/gtest.h>

#include "sched/engine.h"
#include "service/exec.h"
#include "service/protocol.h"

namespace commsched {
namespace {

TEST(EngineOptionsValidation, EngineConstructorRejectsZeroSeeds) {
  sched::EngineOptions options;
  options.seeds = 0;
  EXPECT_THROW(sched::SearchEngine("tabu", options, sched::ScanRules::TabuMargin()),
               ConfigError);
}

TEST(EngineOptionsValidation, EngineConstructorRejectsZeroIterations) {
  sched::EngineOptions options;
  options.max_iterations_per_seed = 0;
  EXPECT_THROW(sched::SearchEngine("tabu", options, sched::ScanRules::TabuMargin()),
               ConfigError);
}

TEST(EngineOptionsValidation, EngineConstructorAcceptsDefaults) {
  EXPECT_NO_THROW(
      sched::SearchEngine("tabu", sched::EngineOptions{}, sched::ScanRules::TabuMargin()));
}

TEST(EngineOptionsValidation, SearchKnobsRejectExplicitZeros) {
  svc::SearchKnobs knobs;
  EXPECT_NO_THROW(svc::ValidateSearchKnobs(knobs));  // nullopt = defaults

  knobs.seeds = 0;
  EXPECT_THROW(svc::ValidateSearchKnobs(knobs), ConfigError);
  knobs.seeds.reset();
  knobs.iterations = 0;
  EXPECT_THROW(svc::ValidateSearchKnobs(knobs), ConfigError);
  knobs.iterations.reset();
  knobs.samples = 0;
  EXPECT_THROW(svc::ValidateSearchKnobs(knobs), ConfigError);
}

TEST(EngineOptionsValidation, RunMappingSearchRejectsZeroSeeds) {
  const dist::DistanceTable table(4, 1.0);
  svc::SearchKnobs knobs;
  knobs.seeds = 0;
  EXPECT_THROW((void)svc::RunMappingSearch(table, {2, 2}, knobs), ConfigError);
}

TEST(EngineOptionsValidation, ProtocolParserRejectsZeroKnobs) {
  EXPECT_THROW((void)svc::ParseRequest(R"({"op":"schedule","seeds":0})"), ConfigError);
  EXPECT_THROW((void)svc::ParseRequest(R"({"op":"schedule","iters":0})"), ConfigError);
  EXPECT_THROW((void)svc::ParseRequest(R"({"op":"schedule","samples":0})"), ConfigError);
  EXPECT_NO_THROW((void)svc::ParseRequest(R"({"op":"schedule","seeds":3,"iters":5})"));
}

TEST(EngineOptionsValidation, MultilevelKnobsRejectDegenerates) {
  svc::MultilevelKnobs knobs;
  knobs.processes = 100;
  EXPECT_NO_THROW(svc::ValidateMultilevelKnobs(knobs));

  svc::MultilevelKnobs zero_procs = knobs;
  zero_procs.processes = 0;
  EXPECT_THROW(svc::ValidateMultilevelKnobs(zero_procs), ConfigError);

  svc::MultilevelKnobs zero_seeds = knobs;
  zero_seeds.seeds = 0;
  EXPECT_THROW(svc::ValidateMultilevelKnobs(zero_seeds), ConfigError);

  svc::MultilevelKnobs zero_iters = knobs;
  zero_iters.iterations = 0;
  EXPECT_THROW(svc::ValidateMultilevelKnobs(zero_iters), ConfigError);

  svc::MultilevelKnobs bad_pattern = knobs;
  bad_pattern.pattern = "bogus";
  EXPECT_THROW(svc::ValidateMultilevelKnobs(bad_pattern), ConfigError);

  svc::MultilevelKnobs bad_distance = knobs;
  bad_distance.distance = "euclidean";
  EXPECT_THROW(svc::ValidateMultilevelKnobs(bad_distance), ConfigError);
}

TEST(EngineOptionsValidation, CanonicalMultilevelKnobsIsStable) {
  svc::MultilevelKnobs knobs;
  knobs.processes = 100;
  const std::string key = svc::CanonicalMultilevelKnobs(knobs);
  EXPECT_EQ(key, svc::CanonicalMultilevelKnobs(knobs));
  svc::MultilevelKnobs other = knobs;
  other.pattern_seed = 2;
  EXPECT_NE(key, svc::CanonicalMultilevelKnobs(other));
}

}  // namespace
}  // namespace commsched
