#include "sched/weighted_tabu.h"

#include <gtest/gtest.h>

#include "routing/updown.h"
#include "sched/tabu.h"
#include "topology/generator.h"
#include "topology/library.h"

namespace commsched::sched {
namespace {

DistanceTable PaperTable(std::size_t switches, std::uint64_t seed) {
  topo::IrregularTopologyOptions options;
  options.switch_count = switches;
  options.seed = seed;
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const route::UpDownRouting routing(g);
  return DistanceTable::Build(routing);
}

TEST(WeightedTabu, UniformWeightsMatchUnweightedTabu) {
  const DistanceTable t = PaperTable(16, 1);
  const qual::WeightMatrix uniform(16, 1.0);
  TabuOptions options;
  options.rng_seed = 4;
  const SearchResult weighted = WeightedTabuSearch(t, uniform, {4, 4, 4, 4}, options);
  const SearchResult plain = TabuSearch(t, {4, 4, 4, 4}, options);
  // Identical walk (same starts, same objective values) -> identical optimum.
  EXPECT_NEAR(weighted.best_fg, plain.best_fg, 1e-9);
}

TEST(WeightedTabu, Deterministic) {
  const DistanceTable t = PaperTable(12, 5);
  qual::WeightMatrix w(12, 1.0);
  w.Set(0, 1, 20.0);
  TabuOptions options;
  options.rng_seed = 11;
  const SearchResult a = WeightedTabuSearch(t, w, {3, 3, 3, 3}, options);
  const SearchResult b = WeightedTabuSearch(t, w, {3, 3, 3, 3}, options);
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.best_fg, b.best_fg);
}

TEST(WeightedTabu, HotApplicationGetsTheTightRegion) {
  // The designed 24-switch network has four identical rings; give one
  // "application pair structure" huge weight between two specific switch
  // groups... simplest expressive test: weights model one hot application
  // (cluster 0's future switches talk 10x more). The weighted mapping's
  // weighted F_G must beat the unweighted mapping's weighted F_G.
  const topo::SwitchGraph g = topo::MakeFourRingsOfSix();
  const route::UpDownRouting routing(g);
  const DistanceTable t = DistanceTable::Build(routing);

  // Build weights from a reference placement: hot app on ring 0 with
  // intensity 10, others 1. (What a traffic monitor would report.)
  qual::WeightMatrix w(24, 0.0);
  auto ring = [](std::size_t s) { return s / 6; };
  for (std::size_t i = 0; i < 24; ++i) {
    for (std::size_t j = i + 1; j < 24; ++j) {
      if (ring(i) == ring(j)) {
        w.Set(i, j, ring(i) == 0 ? 10.0 : 1.0);
      } else {
        w.Set(i, j, 0.01);  // background noise
      }
    }
  }
  TabuOptions options;
  options.max_iterations_per_seed = 60;
  const SearchResult weighted = WeightedTabuSearch(t, w, {6, 6, 6, 6}, options);
  const SearchResult plain = TabuSearch(t, {6, 6, 6, 6}, options);
  EXPECT_LE(weighted.best_fg,
            qual::WeightedGlobalSimilarity(t, w, plain.best) + 1e-9);
}

TEST(WeightedTabu, TraceAndBudgetRespected) {
  const DistanceTable t = PaperTable(12, 8);
  const qual::WeightMatrix w(12, 1.0);
  TabuOptions options;
  options.seeds = 2;
  options.max_iterations_per_seed = 5;
  options.record_trace = true;
  const SearchResult result = WeightedTabuSearch(t, w, {3, 3, 3, 3}, options);
  EXPECT_LE(result.iterations, 10u);
  std::size_t restarts = 0;
  for (const TracePoint& p : result.trace) {
    if (p.is_restart) ++restarts;
  }
  EXPECT_EQ(restarts, 2u);
}

}  // namespace
}  // namespace commsched::sched
