#include "common/check.h"

#include <gtest/gtest.h>

namespace commsched {
namespace {

TEST(Check, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(CS_CHECK(1 + 1 == 2, "math works"));
}

TEST(Check, FailingCheckThrowsContractError) {
  EXPECT_THROW(CS_CHECK(false, "boom"), ContractError);
}

TEST(Check, MessageIncludesExpressionAndDetail) {
  try {
    CS_CHECK(2 > 3, "a=", 2, " b=", 3);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("a=2 b=3"), std::string::npos);
  }
}

TEST(Check, MessageIsOptional) {
  try {
    CS_CHECK(false);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("false"), std::string::npos);
  }
}

TEST(Check, UnreachableThrows) {
  EXPECT_THROW(CS_UNREACHABLE("should not happen"), ContractError);
}

TEST(Check, ContractErrorIsLogicError) {
  EXPECT_THROW(CS_CHECK(false, "x"), std::logic_error);
}

TEST(Check, ConfigErrorIsInvalidArgument) {
  EXPECT_THROW(throw ConfigError("bad"), std::invalid_argument);
}

TEST(Check, SideEffectsEvaluatedOnce) {
  int calls = 0;
  auto bump = [&calls] { return ++calls; };
  CS_CHECK(bump() == 1, "once");
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace commsched
