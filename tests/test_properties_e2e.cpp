// Cross-module property sweeps: end-to-end invariants that must hold on
// every topology the generator can produce. Parameterized over
// (switch count, seed) so regressions in any layer surface here.
#include <gtest/gtest.h>

#include "core/commsched.h"

namespace commsched {
namespace {

class EndToEndProperties
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
 protected:
  void SetUp() override {
    const auto [switches, seed] = GetParam();
    topo::IrregularTopologyOptions options;
    options.switch_count = switches;
    options.seed = seed;
    graph_ = topo::GenerateIrregularTopology(options);
    routing_ = std::make_unique<route::UpDownRouting>(*graph_);
    table_ = dist::DistanceTable::Build(*routing_);
  }

  std::optional<topo::SwitchGraph> graph_;
  std::unique_ptr<route::UpDownRouting> routing_;
  dist::DistanceTable table_;
};

TEST_P(EndToEndProperties, RoutingIsDeadlockFreeAndComplete) {
  EXPECT_TRUE(route::IsDeadlockFree(*routing_));
  const std::size_t n = graph_->switch_count();
  for (topo::SwitchId s = 0; s < n; ++s) {
    for (topo::SwitchId t = 0; t < n; ++t) {
      if (s == t) continue;
      EXPECT_GE(routing_->MinimalDistance(s, t), 1u);
      EXPECT_FALSE(routing_->NextHops(s, t, route::Phase::kUp).empty());
    }
  }
}

TEST_P(EndToEndProperties, DistanceTableInvariants) {
  const std::size_t n = table_.size();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(table_(i, i), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(table_(i, j), table_(j, i));
      if (i != j) {
        EXPECT_GT(table_(i, j), 0.0);
        // Bounded by the legal hop count; at least the parallel combination
        // of at most Degree disjoint shortest paths.
        EXPECT_LE(table_(i, j),
                  static_cast<double>(routing_->MinimalDistance(i, j)) + 1e-9);
      }
    }
  }
}

TEST_P(EndToEndProperties, TabuBeatsRandomAndMatchesAStarOnSmall) {
  const std::size_t n = graph_->switch_count();
  if (n % 4 != 0) GTEST_SKIP() << "cluster sizes need 4 | n";
  const std::vector<std::size_t> sizes(4, n / 4);
  const sched::SearchResult tabu = sched::TabuSearch(table_, sizes);
  sched::RandomSearchOptions random_options;
  random_options.samples = 50;
  const sched::SearchResult random = sched::RandomSearch(table_, sizes, random_options);
  EXPECT_LE(tabu.best_fg, random.best_fg + 1e-9);
  EXPECT_GT(tabu.best_cc, 1.0);
  if (n <= 12) {
    const sched::SearchResult exact = sched::AStarSearch(table_, sizes);
    EXPECT_NEAR(tabu.best_fg, exact.best_fg, 1e-9);
  }
}

TEST_P(EndToEndProperties, SimulatedThroughputOrdersWithCc) {
  const std::size_t n = graph_->switch_count();
  if (n % 4 != 0) GTEST_SKIP() << "cluster sizes need 4 | n";
  const work::Workload workload = work::Workload::Uniform(4, graph_->host_count() / 4);
  const std::vector<std::size_t> sizes(4, n / 4);

  const sched::SearchResult op = sched::TabuSearch(table_, sizes);
  Rng rng(99);
  qual::Partition random_partition = qual::Partition::Random(sizes, rng);
  // The random draw must actually be worse for the check to bite; on small
  // networks a lucky draw can hit the optimum — redraw, then give up.
  int redraws = 0;
  while (qual::ClusteringCoefficient(table_, random_partition) >= op.best_cc - 0.05 &&
         redraws++ < 20) {
    random_partition = qual::Partition::Random(sizes, rng);
  }
  if (redraws > 20) GTEST_SKIP() << "every draw is near-optimal on this tiny network";

  sim::SweepOptions sweep;
  sweep.points = 4;
  sweep.min_rate = 0.2;
  sweep.max_rate = 1.2;
  sweep.config.warmup_cycles = 1500;
  sweep.config.measure_cycles = 4000;

  const auto tput = [&](const qual::Partition& p) {
    const auto mapping = work::ProcessMapping::FromPartition(*graph_, workload, p);
    const sim::TrafficPattern pattern(*graph_, workload, mapping);
    return sim::RunLoadSweep(*graph_, *routing_, pattern, sweep).Throughput();
  };
  EXPECT_GT(tput(op.best), tput(random_partition));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, EndToEndProperties,
    ::testing::Combine(::testing::Values<std::size_t>(8, 12, 16, 20),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

}  // namespace
}  // namespace commsched
