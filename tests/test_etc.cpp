#include "hetero/etc.h"

#include <gtest/gtest.h>

namespace commsched::hetero {
namespace {

TEST(Etc, GenerateShapeAndPositivity) {
  EtcOptions options;
  options.tasks = 64;
  options.machines = 8;
  const EtcMatrix etc = EtcMatrix::Generate(options);
  EXPECT_EQ(etc.task_count(), 64u);
  EXPECT_EQ(etc.machine_count(), 8u);
  for (std::size_t t = 0; t < 64; ++t) {
    for (std::size_t m = 0; m < 8; ++m) {
      EXPECT_GT(etc(t, m), 0.0);
    }
  }
}

TEST(Etc, DeterministicInSeed) {
  EtcOptions options;
  options.seed = 17;
  const EtcMatrix a = EtcMatrix::Generate(options);
  const EtcMatrix b = EtcMatrix::Generate(options);
  for (std::size_t t = 0; t < a.task_count(); ++t) {
    for (std::size_t m = 0; m < a.machine_count(); ++m) {
      EXPECT_DOUBLE_EQ(a(t, m), b(t, m));
    }
  }
}

TEST(Etc, ConsistentMatrixIsConsistent) {
  EtcOptions options;
  options.consistency = EtcConsistency::kConsistent;
  options.tasks = 32;
  options.machines = 6;
  const EtcMatrix etc = EtcMatrix::Generate(options);
  EXPECT_TRUE(etc.IsConsistent());
  // In a row-sorted matrix machine 0 is fastest for every task.
  for (std::size_t t = 0; t < 32; ++t) {
    EXPECT_EQ(etc.BestMachine(t), 0u);
  }
}

TEST(Etc, InconsistentMatrixUsuallyIsNot) {
  EtcOptions options;
  options.consistency = EtcConsistency::kInconsistent;
  options.tasks = 64;
  options.machines = 8;
  const EtcMatrix etc = EtcMatrix::Generate(options);
  EXPECT_FALSE(etc.IsConsistent());
}

TEST(Etc, SemiConsistentEvenMachinesOrdered) {
  EtcOptions options;
  options.consistency = EtcConsistency::kSemiConsistent;
  options.tasks = 32;
  options.machines = 8;
  const EtcMatrix etc = EtcMatrix::Generate(options);
  for (std::size_t t = 0; t < 32; ++t) {
    for (std::size_t m = 0; m + 2 < 8; m += 2) {
      EXPECT_LE(etc(t, m), etc(t, m + 2));
    }
  }
}

TEST(Etc, HeterogeneityBoundsRespected) {
  EtcOptions options;
  options.task_heterogeneity = 4.0;
  options.machine_heterogeneity = 2.0;
  options.tasks = 200;
  options.machines = 4;
  const EtcMatrix etc = EtcMatrix::Generate(options);
  for (std::size_t t = 0; t < 200; ++t) {
    for (std::size_t m = 0; m < 4; ++m) {
      EXPECT_GE(etc(t, m), 1.0);
      EXPECT_LE(etc(t, m), 4.0 * 2.0);
    }
  }
}

TEST(Etc, ValidationErrors) {
  EXPECT_THROW(EtcMatrix etc(0, 4), ContractError);
  EtcMatrix etc(2, 2);
  EXPECT_THROW(etc.Set(0, 0, 0.0), ContractError);
  EXPECT_THROW(etc.Set(2, 0, 1.0), ContractError);
  EtcOptions bad;
  bad.task_heterogeneity = 0.5;
  EXPECT_THROW((void)EtcMatrix::Generate(bad), ContractError);
}

TEST(Etc, BestMachineTieBreaksLow) {
  EtcMatrix etc(1, 3, 0.0);
  etc.Set(0, 0, 5.0);
  etc.Set(0, 1, 3.0);
  etc.Set(0, 2, 3.0);
  EXPECT_EQ(etc.BestMachine(0), 1u);
}

}  // namespace
}  // namespace commsched::hetero
