#include "sched/astar.h"

#include <gtest/gtest.h>

#include "distance/distance_table.h"
#include "routing/updown.h"
#include "sched/exhaustive.h"
#include "sched/tabu.h"
#include "topology/generator.h"

namespace commsched::sched {
namespace {

DistanceTable PaperTable(std::size_t switches, std::uint64_t seed) {
  topo::IrregularTopologyOptions options;
  options.switch_count = switches;
  options.seed = seed;
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const route::UpDownRouting routing(g);
  return DistanceTable::Build(routing);
}

TEST(AStar, FindsTwoIslands) {
  DistanceTable t(4, 10.0);
  t.Set(0, 1, 1.0);
  t.Set(2, 3, 1.0);
  const SearchResult result = AStarSearch(t, {2, 2});
  EXPECT_TRUE(result.best.SameGrouping(qual::Partition({0, 0, 1, 1})));
}

// Parameterized: A* must return the exhaustive optimum at every heuristic
// level, on several seeds.
class AStarMatchesExhaustive
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(AStarMatchesExhaustive, SameMinimumAsExhaustive) {
  const auto [level, seed] = GetParam();
  const DistanceTable t = PaperTable(10, seed);
  AStarOptions options;
  options.heuristic_level = level;
  const SearchResult astar = AStarSearch(t, {3, 3, 2, 2}, options);
  const SearchResult exact = ExhaustiveSearch(t, {3, 3, 2, 2});
  EXPECT_NEAR(astar.best_fg, exact.best_fg, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(LevelsAndSeeds, AStarMatchesExhaustive,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1, 2, 3)));

TEST(AStar, TighterHeuristicExpandsFewerStates) {
  const DistanceTable t = PaperTable(12, 4);
  AStarOptions weak;
  weak.heuristic_level = 0;
  AStarOptions strong;
  strong.heuristic_level = 2;
  const SearchResult r_weak = AStarSearch(t, {3, 3, 3, 3}, weak);
  const SearchResult r_strong = AStarSearch(t, {3, 3, 3, 3}, strong);
  EXPECT_NEAR(r_weak.best_fg, r_strong.best_fg, 1e-9);
  EXPECT_LE(r_strong.evaluations, r_weak.evaluations);
}

TEST(AStar, SixteenSwitchPaperCase) {
  const DistanceTable t = PaperTable(16, 1);
  const SearchResult astar = AStarSearch(t, {4, 4, 4, 4});
  const SearchResult tabu = TabuSearch(t, {4, 4, 4, 4});
  // The paper found Tabu matched the optimum; A* *is* the optimum.
  EXPECT_NEAR(astar.best_fg, tabu.best_fg, 1e-9);
}

TEST(AStar, ExpansionLimitEnforced) {
  const DistanceTable t = PaperTable(12, 1);
  AStarOptions options;
  options.heuristic_level = 0;
  options.max_expansions = 5;
  EXPECT_THROW((void)AStarSearch(t, {3, 3, 3, 3}, options), commsched::ContractError);
}

TEST(AStar, SizesMustCover) {
  const DistanceTable t = PaperTable(8, 1);
  EXPECT_THROW((void)AStarSearch(t, {4, 2}), commsched::ContractError);
}

TEST(AStar, UnequalClusterSizes) {
  const DistanceTable t = PaperTable(10, 6);
  const SearchResult astar = AStarSearch(t, {6, 4});
  const SearchResult exact = ExhaustiveSearch(t, {6, 4});
  EXPECT_NEAR(astar.best_fg, exact.best_fg, 1e-9);
  EXPECT_EQ(astar.best.ClusterSize(0), 6u);
}

}  // namespace
}  // namespace commsched::sched
