// Golden-value tests: results computed by hand on small designed networks,
// pinning the exact semantics of up*/down* legality and the equivalent
// distance. These catch regressions that property tests could miss.
#include <gtest/gtest.h>

#include "distance/distance_table.h"
#include "quality/quality.h"
#include "routing/updown.h"
#include "topology/library.h"

namespace commsched {
namespace {

// Ring of 4 switches rooted at 0: BFS levels are 0,1,2,1; link up-ends are
//   (0,1)->0, (1,2)->1, (2,3)->3, (0,3)->0.
struct Ring4 {
  topo::SwitchGraph graph = topo::MakeRing(4);
  route::UpDownRouting routing{graph, topo::SwitchId{0}};
};

TEST(GoldenRing4, Orientation) {
  const Ring4 r;
  EXPECT_EQ(r.routing.Level(0), 0u);
  EXPECT_EQ(r.routing.Level(1), 1u);
  EXPECT_EQ(r.routing.Level(2), 2u);
  EXPECT_EQ(r.routing.Level(3), 1u);
  const auto up_end = [&](topo::SwitchId a, topo::SwitchId b) {
    return r.routing.UpEnd(*r.graph.FindLink(a, b));
  };
  EXPECT_EQ(up_end(0, 1), 0u);
  EXPECT_EQ(up_end(1, 2), 1u);
  EXPECT_EQ(up_end(2, 3), 3u);
  EXPECT_EQ(up_end(0, 3), 0u);
}

TEST(GoldenRing4, LegalDistances) {
  const Ring4 r;
  // 0 -> 2: both two-hop descents (0-1-2 and 0-3-2) are legal.
  EXPECT_EQ(r.routing.MinimalDistance(0, 2), 2u);
  // 1 -> 3: via 0 is up-then-down (legal); via 2 is down-then-up (illegal).
  EXPECT_EQ(r.routing.MinimalDistance(1, 3), 2u);
  const auto paths_13 = route::EnumerateMinimalPaths(r.routing, 1, 3);
  ASSERT_EQ(paths_13.size(), 1u);
  EXPECT_EQ(paths_13.front(), (std::vector<topo::SwitchId>{1, 0, 3}));
  const auto paths_02 = route::EnumerateMinimalPaths(r.routing, 0, 2);
  EXPECT_EQ(paths_02.size(), 2u);
}

TEST(GoldenRing4, EquivalentDistanceTable) {
  const Ring4 r;
  const dist::DistanceTable t = dist::DistanceTable::Build(r.routing, false);
  // Adjacent pairs: the single link is the only minimal legal path.
  EXPECT_NEAR(t(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(t(1, 2), 1.0, 1e-12);
  EXPECT_NEAR(t(2, 3), 1.0, 1e-12);
  EXPECT_NEAR(t(0, 3), 1.0, 1e-12);
  // 0 <-> 2: both 2-hop paths are legal -> the full 4-cycle of resistors,
  // effective resistance 2 || 2 = 1.
  EXPECT_NEAR(t(0, 2), 1.0, 1e-12);
  // 1 <-> 3: only the path through the root is legal -> two resistors in
  // series = 2. The up*/down* restriction is visible in the table.
  EXPECT_NEAR(t(1, 3), 2.0, 1e-12);
}

TEST(GoldenRing4, QualityFunctionsByHand) {
  const Ring4 r;
  const dist::DistanceTable t = dist::DistanceTable::Build(r.routing, false);
  // Sum of squared distances: four 1s + 1 + 4 = 9; msd = 9/6 = 1.5.
  EXPECT_NEAR(t.MeanSquaredDistance(), 1.5, 1e-12);
  // Partition {0,1},{2,3}: intra = T(0,1)^2 + T(2,3)^2 = 2; pairs = 2.
  const qual::Partition p({0, 0, 1, 1});
  EXPECT_NEAR(qual::GlobalSimilarity(t, p), (2.0 / 2.0) / 1.5, 1e-12);
  // Intercluster (ordered count 8): pairs (0,2)=1,(0,3)=1,(1,2)=1,(1,3)=4,
  // sum of squares doubled = 14; D_G = (14/8)/1.5.
  EXPECT_NEAR(qual::GlobalDissimilarity(t, p), (14.0 / 8.0) / 1.5, 1e-12);
  EXPECT_NEAR(qual::ClusteringCoefficient(t, p), (14.0 / 8.0) / (2.0 / 2.0), 1e-12);
}

// Star with hub 0: every leaf pair communicates through the hub; the
// equivalent distance between leaves is exactly 2 (series), to the hub 1.
TEST(GoldenStar, DistancesAndClusters) {
  const topo::SwitchGraph g = topo::MakeStar(4);
  const route::UpDownRouting routing(g, topo::SwitchId{0});
  const dist::DistanceTable t = dist::DistanceTable::Build(routing, false);
  for (topo::SwitchId leaf = 1; leaf <= 4; ++leaf) {
    EXPECT_NEAR(t(0, leaf), 1.0, 1e-12);
    for (topo::SwitchId other = leaf + 1; other <= 4; ++other) {
      EXPECT_NEAR(t(leaf, other), 2.0, 1e-12);
    }
  }
}

// Two-switch network: unique link, unique path, distance 1; and the
// smallest legal quality computation.
TEST(GoldenPair, MinimalNetwork) {
  topo::SwitchGraph g(2, 4);
  g.AddLink(0, 1);
  const route::UpDownRouting routing(g, topo::SwitchId{0});
  const dist::DistanceTable t = dist::DistanceTable::Build(routing, false);
  EXPECT_NEAR(t(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(t.MeanSquaredDistance(), 1.0, 1e-12);
}

// Hypercube(2) == 4-cycle, but rooted by max degree (all equal -> switch 0):
// cross-check against the ring result with relabeled switches. Hypercube
// links: (0,1),(0,2),(1,3),(2,3); levels 0,1,1,2; the "far" pair for the
// up*/down* restriction is (1,2).
TEST(GoldenHypercube2, MatchesRingStructure) {
  const topo::SwitchGraph g = topo::MakeHypercube(2);
  const route::UpDownRouting routing(g, topo::SwitchId{0});
  const dist::DistanceTable t = dist::DistanceTable::Build(routing, false);
  EXPECT_NEAR(t(0, 3), 1.0, 1e-12);  // two legal descents in parallel
  EXPECT_NEAR(t(1, 2), 2.0, 1e-12);  // only via the root
}

}  // namespace
}  // namespace commsched
