#include "common/table.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace commsched {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table({"name", "value"});
  table.AddRow({std::string("alpha"), 42LL});
  table.AddRow({std::string("beta"), 7LL});
  const std::string text = table.ToText();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTable, DoublePrecisionControl) {
  TextTable table({"x"});
  table.set_precision(2);
  table.AddRow({3.14159});
  EXPECT_NE(table.ToText().find("3.14"), std::string::npos);
  EXPECT_EQ(table.ToText().find("3.142"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.AddRow({1LL}), ContractError);
  EXPECT_THROW(table.AddRow({1LL, 2LL, 3LL}), ContractError);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable table({}), ContractError);
}

TEST(TextTable, CsvBasic) {
  TextTable table({"a", "b"});
  table.AddRow({std::string("x"), 1LL});
  EXPECT_EQ(table.ToCsv(), "a,b\nx,1\n");
}

TEST(TextTable, CsvEscapesSpecialCharacters) {
  TextTable table({"field"});
  table.AddRow({std::string("has,comma")});
  table.AddRow({std::string("has\"quote")});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TextTable, ColumnsAlignAcrossRows) {
  TextTable table({"k", "long_header"});
  table.AddRow({std::string("a"), 1LL});
  table.AddRow({std::string("bbbbbbb"), 22LL});
  const std::string text = table.ToText();
  // Every data line has the same length as the header line.
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_GE(lines.size(), 4u);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].size(), lines[0].size()) << "line " << i;
  }
}

TEST(TextTable, PrecisionOutOfRangeThrows) {
  TextTable table({"x"});
  EXPECT_THROW(table.set_precision(-1), ContractError);
  EXPECT_THROW(table.set_precision(18), ContractError);
}

}  // namespace
}  // namespace commsched
