#include "topology/library.h"

#include <gtest/gtest.h>

namespace commsched::topo {
namespace {

TEST(Library, Ring) {
  const SwitchGraph g = MakeRing(6);
  EXPECT_EQ(g.switch_count(), 6u);
  EXPECT_EQ(g.link_count(), 6u);
  EXPECT_TRUE(g.IsConnected());
  for (SwitchId s = 0; s < 6; ++s) {
    EXPECT_EQ(g.Degree(s), 2u);
  }
  EXPECT_THROW((void)MakeRing(2), ContractError);
}

TEST(Library, Mesh2D) {
  const SwitchGraph g = MakeMesh2D(3, 4);
  EXPECT_EQ(g.switch_count(), 12u);
  EXPECT_EQ(g.link_count(), 3u * 3 + 4u * 2);  // rows*(cols-1) + cols*(rows-1)
  EXPECT_TRUE(g.IsConnected());
  // Corner has degree 2, center degree 4.
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(5), 4u);  // (1,1)
}

TEST(Library, Torus2D) {
  const SwitchGraph g = MakeTorus2D(3, 3);
  EXPECT_EQ(g.switch_count(), 9u);
  EXPECT_EQ(g.link_count(), 18u);
  for (SwitchId s = 0; s < 9; ++s) {
    EXPECT_EQ(g.Degree(s), 4u);
  }
  EXPECT_THROW((void)MakeTorus2D(2, 3), ContractError);
}

TEST(Library, Hypercube) {
  const SwitchGraph g = MakeHypercube(3);
  EXPECT_EQ(g.switch_count(), 8u);
  EXPECT_EQ(g.link_count(), 12u);
  for (SwitchId s = 0; s < 8; ++s) {
    EXPECT_EQ(g.Degree(s), 3u);
  }
  const auto dist = g.BfsDistances(0);
  EXPECT_EQ(dist[7], 3u);  // antipode
}

TEST(Library, Star) {
  const SwitchGraph g = MakeStar(5);
  EXPECT_EQ(g.switch_count(), 6u);
  EXPECT_EQ(g.Degree(0), 5u);
  for (SwitchId s = 1; s <= 5; ++s) {
    EXPECT_EQ(g.Degree(s), 1u);
  }
}

TEST(Library, Complete) {
  const SwitchGraph g = MakeComplete(5);
  EXPECT_EQ(g.link_count(), 10u);
  for (SwitchId s = 0; s < 5; ++s) {
    EXPECT_EQ(g.Degree(s), 4u);
  }
}

TEST(Library, FourRingsOfSixMatchesPaperShape) {
  const SwitchGraph g = MakeFourRingsOfSix();
  EXPECT_EQ(g.switch_count(), 24u);
  EXPECT_EQ(g.hosts_per_switch(), 4u);
  EXPECT_TRUE(g.IsConnected());
  // 4 rings x 6 links + 4 bridges.
  EXPECT_EQ(g.link_count(), 24u + 4u);
  // Ring r owns switches [6r, 6r+5]: consecutive in-ring links exist.
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t p = 0; p < 6; ++p) {
      EXPECT_TRUE(g.HasLink(6 * r + p, 6 * r + (p + 1) % 6));
    }
  }
  // No switch exceeds the 4 inter-switch ports of an 8-port switch.
  for (SwitchId s = 0; s < 24; ++s) {
    EXPECT_LE(g.Degree(s), 4u);
  }
}

TEST(Library, RingsOfRingsBridgeCount) {
  const SwitchGraph g = MakeRingsOfRings(3, 5, 2);
  EXPECT_EQ(g.switch_count(), 15u);
  EXPECT_EQ(g.link_count(), 15u + 3u * 2u);
  EXPECT_TRUE(g.IsConnected());
}

TEST(Library, RingsOfRingsTwoRingsNoDoubledPair) {
  const SwitchGraph g = MakeRingsOfRings(2, 4, 1);
  EXPECT_EQ(g.link_count(), 8u + 1u);
  EXPECT_TRUE(g.IsConnected());
}

TEST(Library, RingsOfRingsValidation) {
  EXPECT_THROW((void)MakeRingsOfRings(1, 6), ContractError);
  EXPECT_THROW((void)MakeRingsOfRings(3, 2), ContractError);
  EXPECT_THROW((void)MakeRingsOfRings(3, 4, 0), ContractError);
  EXPECT_THROW((void)MakeRingsOfRings(3, 4, 5), ContractError);
}

TEST(Library, MixedDensity16) {
  const SwitchGraph g = MakeMixedDensity16();
  EXPECT_EQ(g.switch_count(), 16u);
  EXPECT_TRUE(g.IsConnected());
  // 6 (K4) + 3 groups * 3 (paths) + 4 bridges.
  EXPECT_EQ(g.link_count(), 6u + 9u + 4u);
  // K4 internal links all present.
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_TRUE(g.HasLink(i, j));
    }
  }
  // Sparse groups are paths.
  EXPECT_TRUE(g.HasLink(4, 5));
  EXPECT_FALSE(g.HasLink(4, 6));
  // Every switch fits an 8-port switch (<= 4 inter-switch links).
  for (SwitchId s = 0; s < 16; ++s) {
    EXPECT_LE(g.Degree(s), 4u);
  }
}

TEST(Library, ClusteredRandom) {
  Rng rng(31);
  const SwitchGraph g = MakeClusteredRandom(4, 6, 3, 2, rng);
  EXPECT_EQ(g.switch_count(), 24u);
  EXPECT_TRUE(g.IsConnected());
}

TEST(Library, ClusteredRandomDeterministicInRng) {
  Rng rng1(9);
  Rng rng2(9);
  const SwitchGraph a = MakeClusteredRandom(3, 5, 3, 1, rng1);
  const SwitchGraph b = MakeClusteredRandom(3, 5, 3, 1, rng2);
  ASSERT_EQ(a.link_count(), b.link_count());
  for (LinkId l = 0; l < a.link_count(); ++l) {
    EXPECT_TRUE(a.link(l) == b.link(l));
  }
}

}  // namespace
}  // namespace commsched::topo
