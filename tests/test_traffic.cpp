#include "simnet/traffic.h"

#include <gtest/gtest.h>

#include <map>

#include "topology/generator.h"

namespace commsched::sim {
namespace {

struct Fixture {
  topo::SwitchGraph graph;
  work::Workload workload;
  Fixture() : graph(topo::GenerateIrregularTopology({16, 4, 3, 1, 1000})),
              workload(work::Workload::Uniform(4, 16)) {}
};

TEST(Traffic, IntraclusterOnlyByDefault) {
  const Fixture f;
  Rng rng(1);
  const auto mapping = work::ProcessMapping::RandomAligned(f.graph, f.workload, rng);
  const TrafficPattern pattern(f.graph, f.workload, mapping);
  Rng sample_rng(2);
  for (std::size_t src = 0; src < 64; src += 7) {
    for (int k = 0; k < 50; ++k) {
      const std::size_t dest = pattern.SampleDestination(src, sample_rng);
      EXPECT_NE(dest, src);
      EXPECT_EQ(pattern.AppOfHost(dest), pattern.AppOfHost(src));
    }
  }
}

TEST(Traffic, DestinationsCoverTheWholeCluster) {
  const Fixture f;
  Rng rng(3);
  const auto mapping = work::ProcessMapping::RandomAligned(f.graph, f.workload, rng);
  const TrafficPattern pattern(f.graph, f.workload, mapping);
  Rng sample_rng(4);
  std::map<std::size_t, int> hits;
  for (int k = 0; k < 3000; ++k) {
    ++hits[pattern.SampleDestination(0, sample_rng)];
  }
  EXPECT_EQ(hits.size(), 15u);  // all peers of app(host 0), minus self
  for (const auto& [dest, count] : hits) {
    EXPECT_GT(count, 100);  // roughly uniform (expected 200)
    EXPECT_LT(count, 320);
    (void)dest;
  }
}

TEST(Traffic, InterclusterFractionRespected) {
  const Fixture f;
  std::vector<work::ApplicationSpec> apps = f.workload.applications();
  for (auto& app : apps) app.intercluster_fraction = 0.25;
  const work::Workload workload(apps);
  Rng rng(5);
  const auto mapping = work::ProcessMapping::RandomAligned(f.graph, workload, rng);
  const TrafficPattern pattern(f.graph, workload, mapping);
  Rng sample_rng(6);
  int cross = 0;
  const int n = 20000;
  for (int k = 0; k < n; ++k) {
    if (pattern.AppOfHost(pattern.SampleDestination(5, sample_rng)) != pattern.AppOfHost(5)) {
      ++cross;
    }
  }
  EXPECT_NEAR(static_cast<double>(cross) / n, 0.25, 0.02);
}

TEST(Traffic, HostWeightsFollowApplications) {
  const Fixture f;
  std::vector<work::ApplicationSpec> apps = f.workload.applications();
  apps[0].traffic_weight = 2.0;
  apps[1].traffic_weight = 0.0;
  const work::Workload workload(apps);
  const qual::Partition p = qual::Partition::Blocked({4, 4, 4, 4});
  const auto mapping = work::ProcessMapping::FromPartition(f.graph, workload, p);
  const TrafficPattern pattern(f.graph, workload, mapping);
  EXPECT_DOUBLE_EQ(pattern.HostWeight(0), 2.0);    // app0 host
  EXPECT_DOUBLE_EQ(pattern.HostWeight(16), 0.0);   // app1 host
  EXPECT_DOUBLE_EQ(pattern.HostWeight(32), 1.0);   // app2 host
}

TEST(Traffic, SingleProcessAppHasZeroWeight) {
  // 1-process app with no intercluster traffic cannot send: weight 0.
  topo::SwitchGraph g(2, 1);
  g.AddLink(0, 1);
  const work::Workload workload({{"solo", 1}, {"pair", 1}});
  // Manual mapping: host 0 -> app 0, host 1 -> app 1.
  const work::ProcessMapping mapping(g, workload, {0, 1});
  const TrafficPattern pattern(g, workload, mapping);
  EXPECT_DOUBLE_EQ(pattern.HostWeight(0), 0.0);
  EXPECT_DOUBLE_EQ(pattern.HostWeight(1), 0.0);
}

TEST(Traffic, SoloAppWithInterclusterCanSend) {
  topo::SwitchGraph g(2, 1);
  g.AddLink(0, 1);
  const work::Workload workload({{"solo", 1, 1.0, 1.0}, {"other", 1, 1.0, 0.0}});
  const work::ProcessMapping mapping(g, workload, {0, 1});
  const TrafficPattern pattern(g, workload, mapping);
  EXPECT_GT(pattern.HostWeight(0), 0.0);
  Rng rng(1);
  EXPECT_EQ(pattern.SampleDestination(0, rng), 1u);
}

}  // namespace
}  // namespace commsched::sim
