// The report analysis layer (obs/report.h): folding a JSONL trace plus a
// metrics dump into a TraceSummary, rendering it, and the sweep CSV.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/report.h"

namespace commsched {
namespace {

using obs::LoadMetrics;
using obs::RenderReport;
using obs::SummarizeTrace;
using obs::TraceSummary;
using obs::WriteSweepCsv;

constexpr const char* kTrace =
    R"({"seq":0,"type":"search.restart","algo":"tabu","seed":0,"fg":1.25}
{"seq":1,"type":"search.move","algo":"tabu","seed":0,"a":1,"b":2}
{"seq":2,"type":"search.seed_done","algo":"tabu","seed":0,"iters":12,"evals":1248,"best_fg":0.115,"best_cc":10.58}
{"seq":3,"type":"search.restart","algo":"tabu","seed":1,"fg":0.91}
{"seq":4,"type":"search.seed_done","algo":"tabu","seed":1,"iters":10,"evals":1056,"best_fg":0.128,"best_cc":9.5}
{"seq":5,"type":"sweep.point","point":1,"rate":0.5,"accepted":0.49,"avg_latency":21.5,"saturated":false}
{"seq":6,"type":"sweep.point","point":0,"rate":0.1,"accepted":0.1,"avg_latency":18.0,"saturated":false}
{"seq":7,"type":"sweep.point","point":2,"rate":1.2,"accepted":0.86,"avg_latency":70.25,"saturated":true}
{"seq":8,"type":"net.sample","cycle":1000,"in_flight":42}
{"seq":9,"type":"net.sample","cycle":2000,"in_flight":40}
)";

constexpr const char* kMetrics =
    R"({"counters":{"link.util.0.1":500,"link.util.1.0":800,"link.util.3.2":200,"sim.cycles":20000},"timers":{"sweep.run":{"total_ns":5,"count":1}},"histograms":{"net.latency":{"count":1000,"sum":30000,"min":8,"max":500,"mean":30,"p50":25.5,"p90":110,"p99":480,"buckets":{"4":100,"5":900}}}})";

TraceSummary Summarize(const std::string& trace_text) {
  std::istringstream in(trace_text);
  return SummarizeTrace(in);
}

TEST(ReportTest, FoldsSeedEventsIntoConvergenceRows) {
  const TraceSummary summary = Summarize(kTrace);
  EXPECT_EQ(summary.events, 10u);
  EXPECT_EQ(summary.events_by_type.at("search.seed_done"), 2u);
  EXPECT_EQ(summary.net_samples, 2u);
  ASSERT_EQ(summary.seeds.size(), 2u);
  EXPECT_EQ(summary.seeds[0].seed, 0u);
  EXPECT_EQ(summary.seeds[0].algo, "tabu");
  EXPECT_EQ(summary.seeds[0].iters, 12u);
  EXPECT_EQ(summary.seeds[0].evals, 1248u);
  EXPECT_DOUBLE_EQ(summary.seeds[0].start_fg, 1.25);
  EXPECT_DOUBLE_EQ(summary.seeds[0].best_fg, 0.115);
  EXPECT_DOUBLE_EQ(summary.seeds[0].best_cc, 10.58);
  EXPECT_TRUE(summary.seeds[0].has_start);
  EXPECT_TRUE(summary.seeds[0].has_done);
  EXPECT_EQ(summary.seeds[1].seed, 1u);
}

TEST(ReportTest, SweepPointsAreSortedByPointIndex) {
  const TraceSummary summary = Summarize(kTrace);
  ASSERT_EQ(summary.sweep.size(), 3u);
  EXPECT_EQ(summary.sweep[0].point, 0u);
  EXPECT_DOUBLE_EQ(summary.sweep[0].rate, 0.1);
  EXPECT_EQ(summary.sweep[2].point, 2u);
  EXPECT_TRUE(summary.sweep[2].saturated);
  EXPECT_FALSE(summary.sweep[0].saturated);
}

TEST(ReportTest, UnparseableLinesAreCountedNotFatal) {
  const TraceSummary summary = Summarize("not json\n{\"type\":\"x\"}\n\n{broken\n");
  EXPECT_EQ(summary.events, 3u);
  EXPECT_EQ(summary.events_by_type.at("(unparseable)"), 2u);
  EXPECT_EQ(summary.events_by_type.at("x"), 1u);
}

TEST(ReportTest, LoadMetricsRanksLinksByTraffic) {
  TraceSummary summary;
  ASSERT_TRUE(LoadMetrics(kMetrics, summary));
  EXPECT_TRUE(summary.has_metrics);
  ASSERT_EQ(summary.links.size(), 3u);
  // Descending by flits: 1->0 (800), 0->1 (500), 3->2 (200).
  EXPECT_EQ(summary.links[0].from, 1u);
  EXPECT_EQ(summary.links[0].to, 0u);
  EXPECT_EQ(summary.links[0].flits, 800u);
  EXPECT_EQ(summary.links[2].flits, 200u);
  // Non-link counters load but do not pollute the link ranking.
  EXPECT_EQ(summary.counters.at("sim.cycles"), 20000u);

  const TraceSummary::HistogramSummary& latency = summary.histograms.at("net.latency");
  EXPECT_EQ(latency.count, 1000u);
  EXPECT_EQ(latency.max, 500u);
  EXPECT_DOUBLE_EQ(latency.mean, 30.0);
  EXPECT_DOUBLE_EQ(latency.p50, 25.5);
  EXPECT_DOUBLE_EQ(latency.p90, 110.0);
  EXPECT_DOUBLE_EQ(latency.p99, 480.0);
}

TEST(ReportTest, LoadMetricsRejectsNonMetricsText) {
  TraceSummary summary;
  EXPECT_FALSE(LoadMetrics("", summary));
  EXPECT_FALSE(LoadMetrics("{\"type\":\"search.move\"}", summary));
  EXPECT_FALSE(summary.has_metrics);
}

TEST(ReportTest, MetricsLineInsideTheTraceIsFoldedIn) {
  const TraceSummary summary = Summarize(std::string(kTrace) + kMetrics + "\n");
  EXPECT_TRUE(summary.has_metrics);
  EXPECT_EQ(summary.links.size(), 3u);
  EXPECT_EQ(summary.events, 10u);  // the metrics line is not an event
}

TEST(ReportTest, RenderReportShowsTheHeadlineNumbers) {
  TraceSummary summary = Summarize(kTrace);
  ASSERT_TRUE(LoadMetrics(kMetrics, summary));
  std::ostringstream out;
  RenderReport(summary, out, 2);
  const std::string text = out.str();
  EXPECT_NE(text.find("Search convergence (2 seeds)"), std::string::npos);
  EXPECT_NE(text.find("best F_G: 0.115"), std::string::npos);
  EXPECT_NE(text.find("C_c 10.58"), std::string::npos);
  EXPECT_NE(text.find("p50=25.5"), std::string::npos);
  EXPECT_NE(text.find("p99=480"), std::string::npos);
  EXPECT_NE(text.find("Top-2 hottest links (of 3 directed links)"), std::string::npos);
  EXPECT_NE(text.find("1 -> 0"), std::string::npos);
  // Only the top 2 links render.
  EXPECT_EQ(text.find("3 -> 2"), std::string::npos);
  EXPECT_NE(text.find("Load sweep (3 points)"), std::string::npos);
  EXPECT_NE(text.find("throughput: 0.86"), std::string::npos);
  // Metrics were supplied, so the hint must not appear.
  EXPECT_EQ(text.find("no metrics dump loaded"), std::string::npos);
}

TEST(ReportTest, RenderReportHintsWhenMetricsAreMissing) {
  std::ostringstream out;
  RenderReport(Summarize(kTrace), out);
  EXPECT_NE(out.str().find("no metrics dump loaded"), std::string::npos);
}

TEST(ReportTest, WriteSweepCsvEmitsOneRowPerPoint) {
  std::ostringstream out;
  WriteSweepCsv(Summarize(kTrace), out);
  EXPECT_EQ(out.str(),
            "offered,accepted,avg_latency,saturated\n"
            "0.1,0.1,18,0\n"
            "0.5,0.49,21.5,0\n"
            "1.2,0.86,70.25,1\n");
}

}  // namespace
}  // namespace commsched
