// NetworkSimulator degraded mode (ISSUE 3 tentpole part 4): mid-run fault
// events, dropped-traffic accounting, reconfiguration downtime, repair via
// link_up, and the deadlock-watchdog trace satellite.
#include <sstream>

#include <gtest/gtest.h>

#include "faults/fault_plan.h"
#include "obs/trace.h"
#include "routing/shortest_path.h"
#include "routing/updown.h"
#include "simnet/simulator.h"
#include "topology/generator.h"
#include "topology/library.h"

namespace commsched::sim {
namespace {

using faults::FaultKind;
using faults::FaultPlan;

struct Fixture {
  topo::SwitchGraph graph;
  route::UpDownRouting routing;
  work::Workload workload;
  work::ProcessMapping mapping;
  TrafficPattern pattern;

  explicit Fixture(std::uint64_t seed = 1, std::size_t switches = 16)
      : graph(topo::GenerateIrregularTopology({switches, 4, 3, seed, 1000})),
        routing(graph),
        workload(work::Workload::Uniform(4, switches)),
        mapping(MakeMapping(graph, workload, seed)),
        pattern(graph, workload, mapping) {}

  static work::ProcessMapping MakeMapping(const topo::SwitchGraph& g,
                                          const work::Workload& w, std::uint64_t seed) {
    Rng rng(seed);
    return work::ProcessMapping::RandomAligned(g, w, rng);
  }
};

SimConfig FaultConfig(const FaultPlan& plan) {
  SimConfig config;
  config.warmup_cycles = 2000;
  config.measure_cycles = 8000;
  config.fault_plan = &plan;
  return config;
}

SimConfig FastPlainConfig() {
  SimConfig config;
  config.warmup_cycles = 2000;
  config.measure_cycles = 6000;
  return config;
}

/// A link of `graph` whose loss keeps the graph connected, or nullopt.
std::optional<std::pair<topo::SwitchId, topo::SwitchId>> RedundantLink(
    const topo::SwitchGraph& graph) {
  for (topo::LinkId l = 0; l < graph.link_count(); ++l) {
    if (graph.WithoutLink(l).IsConnected()) {
      return std::make_pair(graph.link(l).a, graph.link(l).b);
    }
  }
  return std::nullopt;
}

TEST(SimFaults, LinkDownMidRunCompletesAndCounts) {
  const Fixture f;
  const auto link = RedundantLink(f.graph);
  ASSERT_TRUE(link.has_value());
  const FaultPlan plan =
      FaultPlan::FromEvents({{4000, FaultKind::kLinkDown, link->first, link->second, 0}});
  NetworkSimulator sim(f.graph, f.routing, f.pattern, FaultConfig(plan));
  const SimMetrics m = sim.Run(0.2);
  EXPECT_EQ(m.fault_events_applied, 1u);
  EXPECT_GE(m.reconfig_cycles, 128u);  // default downtime
  EXPECT_FALSE(m.deadlock_detected);
  EXPECT_GT(m.messages_delivered, 100u);  // traffic flows after the swap
}

TEST(SimFaults, SwitchDownDropsTrafficAndKeepsRunning) {
  const Fixture f;
  const FaultPlan plan = FaultPlan::FromEvents({{4000, FaultKind::kSwitchDown, 0, 0, 2}});
  NetworkSimulator sim(f.graph, f.routing, f.pattern, FaultConfig(plan));
  const SimMetrics m = sim.Run(0.3);
  EXPECT_EQ(m.fault_events_applied, 1u);
  EXPECT_GT(m.messages_lost, 0u);  // its hosts' traffic dies with it
  EXPECT_FALSE(m.deadlock_detected);
  EXPECT_GT(m.messages_delivered, 0u);
}

TEST(SimFaults, LinkUpRestoresCapacity) {
  const Fixture f;
  const auto link = RedundantLink(f.graph);
  ASSERT_TRUE(link.has_value());
  const FaultPlan plan = FaultPlan::FromEvents({
      {3000, FaultKind::kLinkDown, link->first, link->second, 0},
      {6000, FaultKind::kLinkUp, link->first, link->second, 0},
  });
  NetworkSimulator sim(f.graph, f.routing, f.pattern, FaultConfig(plan));
  const SimMetrics m = sim.Run(0.2);
  EXPECT_EQ(m.fault_events_applied, 2u);
  EXPECT_GE(m.reconfig_cycles, 2u * 128u);  // two reconfiguration windows
  EXPECT_FALSE(m.deadlock_detected);
  EXPECT_GT(m.messages_delivered, 100u);
}

TEST(SimFaults, ZeroDowntimeSwapsSameCycle) {
  const Fixture f;
  const auto link = RedundantLink(f.graph);
  ASSERT_TRUE(link.has_value());
  const FaultPlan plan =
      FaultPlan::FromEvents({{4000, FaultKind::kLinkDown, link->first, link->second, 0}});
  SimConfig config = FaultConfig(plan);
  config.reconfig_downtime_cycles = 0;
  NetworkSimulator sim(f.graph, f.routing, f.pattern, config);
  const SimMetrics m = sim.Run(0.2);
  EXPECT_EQ(m.fault_events_applied, 1u);
  EXPECT_EQ(m.reconfig_cycles, 0u);
  EXPECT_FALSE(m.deadlock_detected);
}

TEST(SimFaults, DeterministicUnderFaults) {
  const Fixture f;
  const FaultPlan plan = FaultPlan::FromEvents({{4000, FaultKind::kSwitchDown, 0, 0, 1}});
  NetworkSimulator sim(f.graph, f.routing, f.pattern, FaultConfig(plan));
  const SimMetrics a = sim.Run(0.25);
  const SimMetrics b = sim.Run(0.25);  // Run restarts from a clean network
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_EQ(a.dropped_flits, b.dropped_flits);
  EXPECT_EQ(a.messages_lost, b.messages_lost);
  EXPECT_DOUBLE_EQ(a.avg_latency_cycles, b.avg_latency_cycles);
}

TEST(SimFaults, FaultFreePlanFieldsStayZero) {
  const Fixture f;
  NetworkSimulator sim(f.graph, f.routing, f.pattern, FastPlainConfig());
  const SimMetrics m = sim.Run(0.2);
  EXPECT_EQ(m.fault_events_applied, 0u);
  EXPECT_EQ(m.dropped_flits, 0u);
  EXPECT_EQ(m.messages_lost, 0u);
  EXPECT_EQ(m.reconfig_cycles, 0u);
}

TEST(SimFaults, PlanValidatedAgainstGraphAtConstruction) {
  const Fixture f;
  const FaultPlan plan = FaultPlan::FromEvents({{10, FaultKind::kSwitchDown, 0, 0, 99}});
  SimConfig config;
  config.fault_plan = &plan;
  EXPECT_THROW(NetworkSimulator(f.graph, f.routing, f.pattern, config), ConfigError);
}

TEST(SimFaults, FaultEventsAppearInTrace) {
  const Fixture f;
  const auto link = RedundantLink(f.graph);
  ASSERT_TRUE(link.has_value());
  const FaultPlan plan = FaultPlan::FromEvents({
      {3000, FaultKind::kLinkDown, link->first, link->second, 0},
      {5000, FaultKind::kSwitchDown, 0, 0, 3},
  });
  NetworkSimulator sim(f.graph, f.routing, f.pattern, FaultConfig(plan));
  std::ostringstream out;
  obs::Tracer tracer(out);
  {
    const obs::ScopedTracer scope(tracer);
    (void)sim.Run(0.2);
  }
  const std::string trace = out.str();
  EXPECT_NE(trace.find("\"fault.link_down\""), std::string::npos);
  EXPECT_NE(trace.find("\"fault.switch_down\""), std::string::npos);
  EXPECT_NE(trace.find("\"fault.reconfig_start\""), std::string::npos);
  EXPECT_NE(trace.find("\"fault.reconfig_done\""), std::string::npos);
}

TEST(SimFaults, DeadlockWatchdogEmitsTraceEvent) {
  // The deadlock-prone configuration of test_simulator.cpp: unrestricted
  // minimal routing on a ring, one VC, long messages. When the watchdog
  // fires it must also emit exactly one net.deadlock trace event.
  const topo::SwitchGraph ring = topo::MakeRing(6, 4);
  const route::ShortestPathRouting routing(ring);
  const work::Workload workload = work::Workload::Uniform(2, 12);
  Rng rng(3);
  const auto mapping = work::ProcessMapping::RandomAligned(ring, workload, rng);
  const TrafficPattern pattern(ring, workload, mapping);
  SimConfig config;
  config.warmup_cycles = 4000;
  config.measure_cycles = 12000;
  config.deadlock_threshold_cycles = 1000;
  config.input_buffer_flits = 2;
  config.message_length_flits = 32;
  NetworkSimulator sim(ring, routing, pattern, config);
  std::ostringstream out;
  obs::Tracer tracer(out);
  SimMetrics m;
  {
    const obs::ScopedTracer scope(tracer);
    m = sim.Run(1.6);
  }
  const std::string trace = out.str();
  if (m.deadlock_detected) {
    const std::size_t first = trace.find("\"net.deadlock\"");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(trace.find("\"net.deadlock\"", first + 1), std::string::npos) << "emitted twice";
  } else {
    EXPECT_EQ(trace.find("\"net.deadlock\""), std::string::npos);
  }
}

}  // namespace
}  // namespace commsched::sim
