#include "hetero/meta_heuristics.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace commsched::hetero {
namespace {

/// 2 tasks, 2 machines with an obvious optimum.
EtcMatrix Tiny() {
  EtcMatrix etc(2, 2, 0.0);
  etc.Set(0, 0, 1.0);
  etc.Set(0, 1, 10.0);
  etc.Set(1, 0, 10.0);
  etc.Set(1, 1, 1.0);
  return etc;
}

TEST(MetaSchedule, FromAssignmentComputesMakespan) {
  const EtcMatrix etc = Tiny();
  const MetaSchedule s = MetaSchedule::FromAssignment(etc, {0, 1});
  EXPECT_DOUBLE_EQ(s.makespan, 1.0);
  const MetaSchedule bad = MetaSchedule::FromAssignment(etc, {1, 0});
  EXPECT_DOUBLE_EQ(bad.makespan, 10.0);
}

TEST(MetaSchedule, ValidatesInput) {
  const EtcMatrix etc = Tiny();
  EXPECT_THROW((void)MetaSchedule::FromAssignment(etc, {0}), ContractError);
  EXPECT_THROW((void)MetaSchedule::FromAssignment(etc, {0, 5}), ContractError);
}

TEST(Heuristics, AllFindTheTinyOptimum) {
  const EtcMatrix etc = Tiny();
  for (const auto& [name, schedule] : RunAllHeuristics(etc)) {
    EXPECT_DOUBLE_EQ(schedule.makespan, 1.0) << name;
  }
}

TEST(Heuristics, MetIgnoresLoad) {
  // All tasks fastest on machine 0: MET piles everything there.
  EtcMatrix etc(4, 2, 0.0);
  for (std::size_t t = 0; t < 4; ++t) {
    etc.Set(t, 0, 1.0);
    etc.Set(t, 1, 2.0);
  }
  const MetaSchedule s = Met(etc);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(s.machine_of_task[t], 0u);
  }
  EXPECT_DOUBLE_EQ(s.makespan, 4.0);
  // MCT balances instead.
  EXPECT_LT(Mct(etc).makespan, 4.0);
}

TEST(Heuristics, OlbIgnoresExecutionTime) {
  // Machine 1 is terrible but idle: OLB still uses it.
  EtcMatrix etc(2, 2, 0.0);
  etc.Set(0, 0, 1.0);
  etc.Set(0, 1, 100.0);
  etc.Set(1, 0, 1.0);
  etc.Set(1, 1, 100.0);
  const MetaSchedule s = Olb(etc);
  EXPECT_NE(s.machine_of_task[0], s.machine_of_task[1]);
  EXPECT_DOUBLE_EQ(s.makespan, 100.0);
}

// Property sweep over random instances.
class HeuristicProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeuristicProperties, SchedulesAreWellFormed) {
  EtcOptions options;
  options.tasks = 60;
  options.machines = 6;
  options.seed = GetParam();
  const EtcMatrix etc = EtcMatrix::Generate(options);
  for (const auto& [name, schedule] : RunAllHeuristics(etc)) {
    ASSERT_EQ(schedule.machine_of_task.size(), 60u) << name;
    // Makespan is the max machine finish and is consistent with a
    // recomputation from scratch.
    const MetaSchedule recomputed =
        MetaSchedule::FromAssignment(etc, schedule.machine_of_task);
    EXPECT_NEAR(schedule.makespan, recomputed.makespan, 1e-9) << name;
    EXPECT_GT(schedule.makespan, 0.0) << name;
  }
}

TEST_P(HeuristicProperties, MinMinBeatsNaiveBaselinesUsually) {
  EtcOptions options;
  options.tasks = 100;
  options.machines = 8;
  options.seed = GetParam();
  const EtcMatrix etc = EtcMatrix::Generate(options);
  // The classic HCW result: Min-min is consistently among the best. We
  // assert it is no worse than the *worst* naive baseline by a margin.
  const double minmin = MinMin(etc).makespan;
  const double worst_naive = std::max(Olb(etc).makespan, Met(etc).makespan);
  EXPECT_LT(minmin, worst_naive);
}

TEST_P(HeuristicProperties, LocalSearchNeverHurts) {
  EtcOptions options;
  options.tasks = 40;
  options.machines = 5;
  options.seed = GetParam();
  const EtcMatrix etc = EtcMatrix::Generate(options);
  for (const auto& [name, schedule] : RunAllHeuristics(etc)) {
    const MetaSchedule improved = ImproveByLocalSearch(etc, schedule);
    EXPECT_LE(improved.makespan, schedule.makespan + 1e-9) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeuristicProperties, ::testing::Values(1, 2, 3, 4, 5));

TEST(Heuristics, SufferagePrefersHighSufferageTask) {
  // Task 0 suffers hugely without machine 0; task 1 barely cares. With both
  // competing for machine 0, sufferage gives it to task 0.
  EtcMatrix etc(2, 2, 0.0);
  etc.Set(0, 0, 1.0);
  etc.Set(0, 1, 50.0);
  etc.Set(1, 0, 1.0);
  etc.Set(1, 1, 2.0);
  const MetaSchedule s = Sufferage(etc);
  EXPECT_EQ(s.machine_of_task[0], 0u);
  // Task 1 then completes at 2.0 either way (m0: 1+1, m1: 2).
  EXPECT_DOUBLE_EQ(s.makespan, 2.0);
}

TEST(Heuristics, MaxMinFrontLoadsBigTasks) {
  // One huge task and many small ones on 2 identical machines: Max-min
  // places the huge task first and packs small ones opposite.
  EtcMatrix etc(5, 2, 0.0);
  etc.Set(0, 0, 10.0);
  etc.Set(0, 1, 10.0);
  for (std::size_t t = 1; t < 5; ++t) {
    etc.Set(t, 0, 2.0);
    etc.Set(t, 1, 2.0);
  }
  const MetaSchedule s = MaxMin(etc);
  const std::size_t big_machine = s.machine_of_task[0];
  std::size_t small_with_big = 0;
  for (std::size_t t = 1; t < 5; ++t) {
    if (s.machine_of_task[t] == big_machine) ++small_with_big;
  }
  EXPECT_EQ(small_with_big, 0u);  // 10 vs 4*2: optimal, makespan 10
  EXPECT_DOUBLE_EQ(s.makespan, 10.0);
}

}  // namespace
}  // namespace commsched::hetero
