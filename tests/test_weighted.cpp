#include "quality/weighted.h"

#include <gtest/gtest.h>

#include "quality/quality.h"

#include "common/rng.h"
#include "routing/updown.h"
#include "topology/generator.h"

namespace commsched::qual {
namespace {

DistanceTable PaperTable(std::size_t switches, std::uint64_t seed) {
  topo::IrregularTopologyOptions options;
  options.switch_count = switches;
  options.seed = seed;
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const route::UpDownRouting routing(g);
  return DistanceTable::Build(routing);
}

TEST(WeightMatrix, Basics) {
  WeightMatrix w(3, 2.0);
  EXPECT_DOUBLE_EQ(w(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(w(0, 0), 0.0);
  w.Set(1, 2, 5.0);
  EXPECT_DOUBLE_EQ(w(2, 1), 5.0);
  EXPECT_DOUBLE_EQ(w.TotalWeight(), 2.0 + 2.0 + 5.0);
}

TEST(WeightMatrix, Validation) {
  WeightMatrix w(3, 1.0);
  EXPECT_THROW(w.Set(0, 0, 1.0), ContractError);
  EXPECT_THROW(w.Set(0, 1, -1.0), ContractError);
  EXPECT_THROW(w.Set(0, 3, 1.0), ContractError);
  WeightMatrix zero(3, 0.0);
  EXPECT_THROW(zero.Normalize(), ContractError);
}

TEST(WeightMatrix, NormalizeMakesUniformAllOnes) {
  WeightMatrix w(4, 3.5);
  w.Normalize();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_NEAR(w(i, j), 1.0, 1e-12);
    }
  }
}

TEST(Weighted, UniformWeightsReduceToUnweighted) {
  const DistanceTable t = PaperTable(12, 3);
  const WeightMatrix uniform(12, 7.0);  // any constant
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Partition p = Partition::Random({3, 3, 3, 3}, rng);
    EXPECT_NEAR(WeightedGlobalSimilarity(t, uniform, p), GlobalSimilarity(t, p), 1e-9);
    EXPECT_NEAR(WeightedGlobalDissimilarity(t, uniform, p), GlobalDissimilarity(t, p), 1e-9);
    EXPECT_NEAR(WeightedClusteringCoefficient(t, uniform, p), ClusteringCoefficient(t, p),
                1e-9);
  }
}

TEST(Weighted, HotPairDrivesThePreference) {
  // Switches 0 and 1 are close (distance 1); every other pair is distant
  // (10). The hot pair (0,1) carries weight 10, background pairs 0.1.
  // Keeping the hot pair together on the cheap link must score far better
  // than splitting it across clusters.
  DistanceTable t(4, 10.0);
  t.Set(0, 1, 1.0);
  WeightMatrix w(4, 0.1);
  w.Set(0, 1, 10.0);
  const Partition together({0, 0, 1, 1});   // hot pair intracluster, d = 1
  const Partition split({0, 1, 0, 1});      // hot pair intercluster
  const double fg_together = WeightedGlobalSimilarity(t, w, together);
  const double fg_split = WeightedGlobalSimilarity(t, w, split);
  EXPECT_LT(fg_together, 0.5);
  EXPECT_GT(fg_split, 2.0);
  // The unweighted function cannot tell these apart as sharply: both have
  // one cheap option available, and (0,1) counts like any pair.
  EXPECT_GT(WeightedClusteringCoefficient(t, w, together),
            WeightedClusteringCoefficient(t, w, split));
}

TEST(Weighted, ZeroIntraWeightThrows) {
  const DistanceTable t = PaperTable(8, 1);
  WeightMatrix w(8, 0.0);
  w.Set(0, 4, 1.0);  // will be intercluster in the blocked partition
  const Partition p = Partition::Blocked({4, 4});
  EXPECT_THROW((void)WeightedGlobalSimilarity(t, w, p), ContractError);
  EXPECT_NO_THROW((void)WeightedGlobalDissimilarity(t, w, p));
}

TEST(WeightedSwapEvaluator, MatchesDirectComputation) {
  const DistanceTable t = PaperTable(12, 7);
  Rng rng(9);
  WeightMatrix w(12, 1.0);
  // Randomize the weights.
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = i + 1; j < 12; ++j) {
      w.Set(i, j, 0.1 + rng.NextDouble() * 5.0);
    }
  }
  Partition p = Partition::Random({3, 3, 3, 3}, rng);
  WeightedSwapEvaluator eval(t, w, p);
  EXPECT_NEAR(eval.Fg(), WeightedGlobalSimilarity(t, w, p), 1e-9);
  EXPECT_NEAR(eval.Dg(), WeightedGlobalDissimilarity(t, w, p), 1e-9);
  EXPECT_NEAR(eval.Cc(), WeightedClusteringCoefficient(t, w, p), 1e-9);

  for (int trial = 0; trial < 40; ++trial) {
    std::size_t a = 0;
    std::size_t b = 0;
    do {
      a = static_cast<std::size_t>(rng.NextIndex(12));
      b = static_cast<std::size_t>(rng.NextIndex(12));
    } while (eval.partition().ClusterOf(a) == eval.partition().ClusterOf(b));
    Partition swapped = eval.partition();
    swapped.Swap(a, b);
    EXPECT_NEAR(eval.FgAfterSwap(a, b), WeightedGlobalSimilarity(t, w, swapped), 1e-9);
    eval.ApplySwap(a, b);
    EXPECT_NEAR(eval.Fg(), WeightedGlobalSimilarity(t, w, swapped), 1e-9);
  }
}

TEST(WeightedSwapEvaluator, ResetRecomputes) {
  const DistanceTable t = PaperTable(8, 2);
  const WeightMatrix w(8, 1.0);
  WeightedSwapEvaluator eval(t, w, Partition::Blocked({4, 4}));
  Rng rng(3);
  const Partition other = Partition::Random({4, 4}, rng);
  eval.Reset(other);
  EXPECT_NEAR(eval.Fg(), WeightedGlobalSimilarity(t, w, other), 1e-12);
}

}  // namespace
}  // namespace commsched::qual
