#include "common/strings.h"

#include <gtest/gtest.h>

namespace commsched {
namespace {

TEST(Strings, JoinBasic) {
  std::vector<int> v{1, 2, 3};
  EXPECT_EQ(Join(v, ", "), "1, 2, 3");
}

TEST(Strings, JoinEmpty) {
  std::vector<int> v;
  EXPECT_EQ(Join(v, ","), "");
}

TEST(Strings, JoinSingle) {
  std::vector<std::string> v{"only"};
  EXPECT_EQ(Join(v, "-"), "only");
}

TEST(Strings, SplitBasic) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = Split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitEmptyString) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("nochange"), "nochange");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(StartsWith("switches 16", "switches"));
  EXPECT_FALSE(StartsWith("sw", "switches"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

}  // namespace
}  // namespace commsched
