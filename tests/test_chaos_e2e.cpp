// End-to-end chaos test (ISSUE 3 acceptance): on a seeded 16-switch random
// topology, kill two links and a switch mid-run. The simulation must finish
// without crashing, the trace report must show the degradation window, and
// anchored repair must recover >= 80% of the pre-fault clustering
// coefficient while migrating at most 25% of the processes.
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "distance/distance_table.h"
#include "faults/degraded.h"
#include "faults/fault_plan.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "quality/quality.h"
#include "routing/updown.h"
#include "sched/local_search.h"
#include "sched/repair.h"
#include "simnet/simulator.h"
#include "topology/generator.h"

namespace commsched {
namespace {

constexpr std::uint64_t kSeed = 11;
constexpr std::size_t kSwitches = 16;

struct ChaosFaults {
  topo::Link link1;
  topo::Link link2;
  topo::SwitchId dead_switch = 0;
};

/// Deterministically picks two links plus one switch whose combined loss
/// keeps at least 13 of the 16 switches in one component, so the run
/// degrades without collapsing. Pure scan: no randomness, no flakes.
ChaosFaults PickFaults(const topo::SwitchGraph& graph) {
  for (topo::LinkId l1 = 0; l1 < graph.link_count(); ++l1) {
    for (topo::LinkId l2 = l1 + 1; l2 < graph.link_count(); ++l2) {
      for (topo::SwitchId s = 0; s < graph.switch_count(); ++s) {
        const topo::Link& a = graph.link(l1);
        const topo::Link& b = graph.link(l2);
        if (s == a.a || s == a.b || s == b.a || s == b.b) continue;
        faults::DegradedView view(graph);
        view.FailLink(a.a, a.b);
        view.FailLink(b.a, b.b);
        view.FailSwitch(s);
        if (view.LargestAliveComponent().size() >= 13) {
          return {a, b, s};
        }
      }
    }
  }
  throw std::runtime_error("no survivable fault triple in this topology");
}

TEST(ChaosE2E, MidRunFaultsDegradeReportAndRepairRecovers) {
  const topo::SwitchGraph graph =
      topo::GenerateIrregularTopology({kSwitches, 4, 3, kSeed, 1000});
  const route::UpDownRouting routing(graph);
  const dist::DistanceTable base_table = dist::DistanceTable::Build(routing);

  // Pre-fault mapping: a properly scheduled 4x4 partition, not a random one,
  // so the 80% recovery bar is measured against a real baseline.
  sched::SteepestDescentOptions search;
  search.restarts = 4;
  search.rng_seed = kSeed;
  const sched::SearchResult scheduled =
      sched::SteepestDescent(base_table, {4, 4, 4, 4}, search);
  const double pre_fault_cc = scheduled.best_cc;
  ASSERT_GT(pre_fault_cc, 0.0);

  const ChaosFaults chaos = PickFaults(graph);
  const faults::FaultPlan plan = faults::FaultPlan::FromEvents({
      {4000, faults::FaultKind::kLinkDown, chaos.link1.a, chaos.link1.b, 0},
      {5000, faults::FaultKind::kLinkDown, chaos.link2.a, chaos.link2.b, 0},
      {6000, faults::FaultKind::kSwitchDown, 0, 0, chaos.dead_switch},
  });

  // --- Simulate through the faults, tracing the whole run. ---
  const work::Workload workload = work::Workload::Uniform(4, kSwitches);
  Rng rng(kSeed);
  const auto mapping = work::ProcessMapping::RandomAligned(graph, workload, rng);
  const sim::TrafficPattern pattern(graph, workload, mapping);
  sim::SimConfig config;
  config.warmup_cycles = 2000;
  config.measure_cycles = 10000;
  config.fault_plan = &plan;
  sim::NetworkSimulator simulator(graph, routing, pattern, config);

  std::ostringstream trace_out;
  obs::Tracer tracer(trace_out);
  sim::SimMetrics metrics;
  {
    const obs::ScopedTracer scope(tracer);
    metrics = simulator.Run(0.2);
  }
  EXPECT_EQ(metrics.fault_events_applied, 3u);
  EXPECT_GT(metrics.messages_lost, 0u);        // the dead switch strands hosts
  EXPECT_GE(metrics.reconfig_cycles, 128u);    // a downtime window happened
  EXPECT_GT(metrics.messages_delivered, 100u); // and traffic still flowed
  EXPECT_FALSE(metrics.deadlock_detected);

  // --- The report renders the degradation window from that trace. ---
  std::istringstream trace_in(trace_out.str());
  const obs::TraceSummary summary = obs::SummarizeTrace(trace_in);
  ASSERT_FALSE(summary.reconfigs.empty());
  EXPECT_TRUE(summary.reconfigs.front().has_done);
  EXPECT_EQ(summary.faults.size(), 3u);
  std::ostringstream report;
  obs::RenderReport(summary, report);
  EXPECT_NE(report.str().find("Fault & reconfiguration"), std::string::npos);

  // --- Repair: restrict the scheduled mapping to the survivors and run the
  // anchored repair with a 25% migration budget. ---
  faults::DegradedView view(graph);
  for (const faults::FaultEvent& event : plan.events()) view.Apply(event);
  const faults::DegradedRouting degraded(graph, view.Reconfigure());
  const faults::Reconfiguration& reconfig = degraded.reconfig();
  const dist::DistanceTable degraded_table =
      dist::DistanceTable::Build(degraded.compact_routing());

  std::vector<std::size_t> restricted(reconfig.graph.switch_count());
  for (topo::SwitchId base = 0; base < kSwitches; ++base) {
    if (reconfig.to_compact[base].has_value()) {
      restricted[*reconfig.to_compact[base]] = scheduled.best.ClusterOf(base);
    }
  }
  const qual::Partition anchor(restricted);
  ASSERT_EQ(anchor.cluster_count(), 4u);  // no cluster was wiped out entirely

  sched::RepairOptions options;
  options.migration_budget = kSwitches / 4;  // 25% of the processes
  const sched::RepairOutcome repaired =
      sched::AnchoredRepair(degraded_table, anchor, {}, std::nullopt, options);

  EXPECT_LE(repaired.displaced, kSwitches / 4);
  EXPECT_GE(repaired.repaired_cc, 0.8 * pre_fault_cc)
      << "repair recovered only " << repaired.repaired_cc << " of pre-fault C_c "
      << pre_fault_cc;
  EXPECT_DOUBLE_EQ(repaired.repaired_cc,
                   qual::ClusteringCoefficient(degraded_table, repaired.repaired));
}

TEST(ChaosE2E, ChaosRunIsDeterministic) {
  const topo::SwitchGraph graph =
      topo::GenerateIrregularTopology({kSwitches, 4, 3, kSeed, 1000});
  const route::UpDownRouting routing(graph);
  const ChaosFaults chaos = PickFaults(graph);
  const faults::FaultPlan plan = faults::FaultPlan::FromEvents({
      {4000, faults::FaultKind::kLinkDown, chaos.link1.a, chaos.link1.b, 0},
      {5000, faults::FaultKind::kLinkDown, chaos.link2.a, chaos.link2.b, 0},
      {6000, faults::FaultKind::kSwitchDown, 0, 0, chaos.dead_switch},
  });
  const work::Workload workload = work::Workload::Uniform(4, kSwitches);
  Rng rng(kSeed);
  const auto mapping = work::ProcessMapping::RandomAligned(graph, workload, rng);
  const sim::TrafficPattern pattern(graph, workload, mapping);
  sim::SimConfig config;
  config.warmup_cycles = 2000;
  config.measure_cycles = 8000;
  config.fault_plan = &plan;
  sim::NetworkSimulator simulator(graph, routing, pattern, config);
  const sim::SimMetrics a = simulator.Run(0.2);
  const sim::SimMetrics b = simulator.Run(0.2);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_EQ(a.messages_lost, b.messages_lost);
  EXPECT_EQ(a.dropped_flits, b.dropped_flits);
  EXPECT_EQ(a.reconfig_cycles, b.reconfig_cycles);
  EXPECT_DOUBLE_EQ(a.avg_latency_cycles, b.avg_latency_cycles);
}

}  // namespace
}  // namespace commsched
