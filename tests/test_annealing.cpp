#include "sched/annealing.h"

#include <gtest/gtest.h>

#include "distance/distance_table.h"
#include "routing/updown.h"
#include "sched/exhaustive.h"
#include "topology/generator.h"

namespace commsched::sched {
namespace {

DistanceTable PaperTable(std::size_t switches, std::uint64_t seed) {
  topo::IrregularTopologyOptions options;
  options.switch_count = switches;
  options.seed = seed;
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const route::UpDownRouting routing(g);
  return DistanceTable::Build(routing);
}

TEST(Annealing, FindsTwoIslands) {
  DistanceTable t(4, 10.0);
  t.Set(0, 1, 1.0);
  t.Set(2, 3, 1.0);
  AnnealingOptions options;
  options.iterations = 2000;
  const SearchResult result = SimulatedAnnealing(t, {2, 2}, options);
  EXPECT_TRUE(result.best.SameGrouping(qual::Partition({0, 0, 1, 1})));
}

TEST(Annealing, Deterministic) {
  const DistanceTable t = PaperTable(12, 3);
  AnnealingOptions options;
  options.rng_seed = 42;
  options.iterations = 3000;
  const SearchResult a = SimulatedAnnealing(t, {3, 3, 3, 3}, options);
  const SearchResult b = SimulatedAnnealing(t, {3, 3, 3, 3}, options);
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.best_fg, b.best_fg);
}

TEST(Annealing, ImprovesOnRandom) {
  const DistanceTable t = PaperTable(16, 2);
  AnnealingOptions options;
  options.iterations = 20000;
  const SearchResult result = SimulatedAnnealing(t, {4, 4, 4, 4}, options);
  EXPECT_LT(result.best_fg, 0.95);
}

TEST(Annealing, NearOptimalOnSmallNetwork) {
  const DistanceTable t = PaperTable(8, 5);
  const SearchResult exact = ExhaustiveSearch(t, {2, 2, 2, 2});
  AnnealingOptions options;
  options.iterations = 20000;
  const SearchResult sa = SimulatedAnnealing(t, {2, 2, 2, 2}, options);
  EXPECT_LE(sa.best_fg, exact.best_fg * 1.05 + 1e-9);
}

TEST(Annealing, TraceRecordsAcceptedMoves) {
  const DistanceTable t = PaperTable(12, 7);
  AnnealingOptions options;
  options.iterations = 500;
  options.record_trace = true;
  const SearchResult result = SimulatedAnnealing(t, {3, 3, 3, 3}, options);
  ASSERT_FALSE(result.trace.empty());
  EXPECT_TRUE(result.trace.front().is_restart);
  EXPECT_EQ(result.trace.size(), result.iterations + 1);
}

TEST(GeneticAnnealing, FindsTwoIslands) {
  DistanceTable t(4, 10.0);
  t.Set(0, 1, 1.0);
  t.Set(2, 3, 1.0);
  GeneticAnnealingOptions options;
  options.generations = 50;
  const SearchResult result = GeneticSimulatedAnnealing(t, {2, 2}, options);
  EXPECT_TRUE(result.best.SameGrouping(qual::Partition({0, 0, 1, 1})));
}

TEST(GeneticAnnealing, Deterministic) {
  const DistanceTable t = PaperTable(12, 9);
  GeneticAnnealingOptions options;
  options.rng_seed = 5;
  options.generations = 40;
  const SearchResult a = GeneticSimulatedAnnealing(t, {3, 3, 3, 3}, options);
  const SearchResult b = GeneticSimulatedAnnealing(t, {3, 3, 3, 3}, options);
  EXPECT_EQ(a.best, b.best);
}

TEST(GeneticAnnealing, ImprovesOnRandom) {
  const DistanceTable t = PaperTable(16, 11);
  GeneticAnnealingOptions options;
  options.generations = 150;
  const SearchResult result = GeneticSimulatedAnnealing(t, {4, 4, 4, 4}, options);
  EXPECT_LT(result.best_fg, 0.95);
}

TEST(GeneticAnnealing, PopulationTooSmallRejected) {
  const DistanceTable t = PaperTable(8, 1);
  GeneticAnnealingOptions options;
  options.population = 1;
  EXPECT_THROW((void)GeneticSimulatedAnnealing(t, {2, 2, 2, 2}, options),
               commsched::ContractError);
}

TEST(GeneticAnnealing, ResultPartitionSizesPreserved) {
  const DistanceTable t = PaperTable(12, 13);
  GeneticAnnealingOptions options;
  options.generations = 30;
  options.crossover_probability = 1.0;  // stress the crossover path
  const SearchResult result = GeneticSimulatedAnnealing(t, {6, 3, 3}, options);
  EXPECT_EQ(result.best.ClusterSize(0), 6u);
  EXPECT_EQ(result.best.ClusterSize(1), 3u);
  EXPECT_EQ(result.best.ClusterSize(2), 3u);
}

}  // namespace
}  // namespace commsched::sched
