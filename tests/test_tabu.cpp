#include "sched/tabu.h"

#include <gtest/gtest.h>

#include "distance/distance_table.h"
#include "routing/updown.h"
#include "sched/exhaustive.h"
#include "topology/generator.h"
#include "topology/library.h"

namespace commsched::sched {
namespace {

DistanceTable PaperTable(std::size_t switches, std::uint64_t seed) {
  topo::IrregularTopologyOptions options;
  options.switch_count = switches;
  options.seed = seed;
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const route::UpDownRouting routing(g);
  return DistanceTable::Build(routing);
}

TEST(Tabu, FindsTwoIslands) {
  // Two obvious clusters: Tabu must find the (0,1)(2,3) grouping.
  DistanceTable t(4, 10.0);
  t.Set(0, 1, 1.0);
  t.Set(2, 3, 1.0);
  TabuOptions options;
  options.seeds = 3;
  const SearchResult result = TabuSearch(t, {2, 2}, options);
  EXPECT_TRUE(result.best.SameGrouping(qual::Partition({0, 0, 1, 1})));
}

TEST(Tabu, DeterministicForFixedSeed) {
  const DistanceTable t = PaperTable(16, 4);
  TabuOptions options;
  options.rng_seed = 99;
  const SearchResult a = TabuSearch(t, {4, 4, 4, 4}, options);
  const SearchResult b = TabuSearch(t, {4, 4, 4, 4}, options);
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.best_fg, b.best_fg);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Tabu, ParallelSeedsMatchSequential) {
  const DistanceTable t = PaperTable(16, 4);
  TabuOptions options;
  options.rng_seed = 7;
  options.parallel_seeds = false;
  const SearchResult seq = TabuSearch(t, {4, 4, 4, 4}, options);
  options.parallel_seeds = true;
  const SearchResult par = TabuSearch(t, {4, 4, 4, 4}, options);
  EXPECT_EQ(seq.best, par.best);
  EXPECT_EQ(seq.iterations, par.iterations);
}

TEST(Tabu, BeatsAverageRandomMapping) {
  const DistanceTable t = PaperTable(16, 1);
  const SearchResult result = TabuSearch(t, {4, 4, 4, 4});
  // Expected F_G of a random mapping is 1; the optimized one must be far
  // below.
  EXPECT_LT(result.best_fg, 0.9);
  EXPECT_GT(result.best_cc, 1.0);
}

TEST(Tabu, MatchesExhaustiveOnSmallNetworks) {
  // The paper's validation (§4.2): Tabu == exhaustive for small networks.
  for (std::uint64_t seed : {1, 2, 3}) {
    const DistanceTable t = PaperTable(8, seed);
    const SearchResult tabu = TabuSearch(t, {2, 2, 2, 2});
    const SearchResult exact = ExhaustiveSearch(t, {2, 2, 2, 2});
    EXPECT_NEAR(tabu.best_fg, exact.best_fg, 1e-9) << "seed " << seed;
  }
}

TEST(Tabu, SingleSeedFromExplicitStart) {
  const DistanceTable t = PaperTable(12, 2);
  const qual::Partition start = qual::Partition::Blocked({3, 3, 3, 3});
  TabuOptions options;
  options.record_trace = true;
  const SearchResult result = TabuSearchFrom(t, start, options);
  EXPECT_LE(result.best_fg, qual::GlobalSimilarity(t, start) + 1e-12);
  ASSERT_FALSE(result.trace.empty());
  EXPECT_TRUE(result.trace.front().is_restart);
}

TEST(Tabu, TraceShapeMatchesFigureOne) {
  const DistanceTable t = PaperTable(16, 5);
  TabuOptions options;
  options.record_trace = true;
  options.seeds = 10;
  const SearchResult result = TabuSearch(t, {4, 4, 4, 4}, options);
  // 10 restart markers, iteration numbers strictly increasing.
  std::size_t restarts = 0;
  for (std::size_t k = 0; k < result.trace.size(); ++k) {
    if (result.trace[k].is_restart) ++restarts;
    if (k > 0) {
      EXPECT_GT(result.trace[k].iteration, result.trace[k - 1].iteration);
    }
  }
  EXPECT_EQ(restarts, 10u);
  // The best value in the trace matches the reported minimum.
  double min_fg = result.trace.front().fg;
  for (const TracePoint& p : result.trace) min_fg = std::min(min_fg, p.fg);
  EXPECT_NEAR(min_fg, result.best_fg, 1e-9);
  // F decreases rapidly after each restart: the first move after a restart
  // never increases F (steepest descent step).
  for (std::size_t k = 0; k + 1 < result.trace.size(); ++k) {
    if (result.trace[k].is_restart && !result.trace[k + 1].is_restart) {
      EXPECT_LE(result.trace[k + 1].fg, result.trace[k].fg + 1e-12);
    }
  }
}

TEST(Tabu, RespectsIterationBudget) {
  const DistanceTable t = PaperTable(16, 6);
  TabuOptions options;
  options.seeds = 1;
  options.max_iterations_per_seed = 5;
  const SearchResult result = TabuSearch(t, {4, 4, 4, 4}, options);
  EXPECT_LE(result.iterations, 5u);
}

TEST(Tabu, MoreSeedsNeverWorse) {
  const DistanceTable t = PaperTable(16, 7);
  TabuOptions one;
  one.seeds = 1;
  TabuOptions ten;
  ten.seeds = 10;
  // Same rng_seed: the 10-seed run explores a superset of starts.
  const double fg1 = TabuSearch(t, {4, 4, 4, 4}, one).best_fg;
  const double fg10 = TabuSearch(t, {4, 4, 4, 4}, ten).best_fg;
  EXPECT_LE(fg10, fg1 + 1e-12);
}

TEST(Tabu, ClusterSizesRespected) {
  const DistanceTable t = PaperTable(16, 8);
  const SearchResult result = TabuSearch(t, {8, 4, 4});
  EXPECT_EQ(result.best.ClusterSize(0), 8u);
  EXPECT_EQ(result.best.ClusterSize(1), 4u);
  EXPECT_EQ(result.best.ClusterSize(2), 4u);
}

TEST(Tabu, ResultCoefficientsConsistent) {
  const DistanceTable t = PaperTable(16, 9);
  const SearchResult r = TabuSearch(t, {4, 4, 4, 4});
  EXPECT_NEAR(r.best_fg, qual::GlobalSimilarity(t, r.best), 1e-12);
  EXPECT_NEAR(r.best_dg, qual::GlobalDissimilarity(t, r.best), 1e-12);
  EXPECT_NEAR(r.best_cc, r.best_dg / r.best_fg, 1e-12);
}

TEST(Tabu, EscapeMovesEventuallyLeaveLocalMinimum) {
  // With a tiny per-seed budget the walk must still record escape moves
  // (smallest-increase swaps) once a local minimum is hit; the trace then
  // contains at least one increase.
  const DistanceTable t = PaperTable(12, 3);
  TabuOptions options;
  options.seeds = 1;
  options.max_iterations_per_seed = 40;
  options.local_min_repeats = 100;  // effectively disabled
  options.record_trace = true;
  const SearchResult result = TabuSearchFrom(t, qual::Partition::Blocked({3, 3, 3, 3}), options);
  bool any_increase = false;
  for (std::size_t k = 1; k < result.trace.size(); ++k) {
    if (result.trace[k].fg > result.trace[k - 1].fg + 1e-12) any_increase = true;
  }
  EXPECT_TRUE(any_increase);
}

}  // namespace
}  // namespace commsched::sched
