// Cross-policy simulator properties and the Duato safety verifier,
// parameterized over topologies and VC configurations.
#include <gtest/gtest.h>

#include "core/commsched.h"

namespace commsched::sim {
namespace {

struct NamedNet {
  std::string name;
  topo::SwitchGraph graph;
};

std::vector<NamedNet> Nets() {
  std::vector<NamedNet> nets;
  nets.push_back({"random16", topo::GenerateIrregularTopology({16, 4, 3, 1, 1000})});
  nets.push_back({"rings24", topo::MakeFourRingsOfSix()});
  nets.push_back({"mixed16", topo::MakeMixedDensity16()});
  nets.push_back({"torus9", topo::MakeTorus2D(3, 3)});
  return nets;
}

TEST(DuatoSafety, HoldsOnEveryTopologyAndVcCount) {
  for (const NamedNet& net : Nets()) {
    for (std::size_t vcs : {2u, 3u, 4u}) {
      const DuatoFullyAdaptivePolicy policy(net.graph, vcs);
      EXPECT_TRUE(VerifyDuatoSafety(policy)) << net.name << " vcs=" << vcs;
    }
  }
}

class PolicySimProperties
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};

TEST_P(PolicySimProperties, ConservationAndSanityAcrossPolicies) {
  const auto [vcs, duato] = GetParam();
  if (duato && vcs < 2) GTEST_SKIP();
  const topo::SwitchGraph graph = topo::GenerateIrregularTopology({12, 4, 3, 5, 1000});
  const route::UpDownRouting routing(graph);
  const work::Workload workload = work::Workload::Uniform(4, 12);
  Rng rng(3);
  const auto mapping = work::ProcessMapping::RandomAligned(graph, workload, rng);
  const TrafficPattern pattern(graph, workload, mapping);

  SimConfig config;
  config.warmup_cycles = 1500;
  config.measure_cycles = 5000;
  config.virtual_channels = vcs;

  std::unique_ptr<VcRoutingPolicy> policy;
  if (duato) {
    policy = std::make_unique<DuatoFullyAdaptivePolicy>(graph, vcs);
  } else {
    policy = std::make_unique<SingleClassVcPolicy>(routing, vcs, /*adaptive=*/true);
  }
  NetworkSimulator simulator(graph, *policy, pattern, config);
  const SimMetrics m = simulator.Run(0.25);

  EXPECT_FALSE(m.deadlock_detected);
  EXPECT_GT(m.messages_delivered, 0u);
  // Flit conservation: delivered flits == delivered messages * length, up
  // to in-flight tails (at most one partial message per host pair chain —
  // bounded loosely by a message's worth per delivery port).
  EXPECT_GE(m.flits_delivered + 16 * graph.host_count(),
            m.messages_delivered * 16);
  // Percentile ordering.
  if (m.messages_delivered > 10) {
    EXPECT_LE(m.p50_latency_cycles, m.p95_latency_cycles);
    EXPECT_LE(m.p95_latency_cycles, m.p99_latency_cycles);
    EXPECT_LE(m.p99_latency_cycles, m.max_latency_cycles);
    EXPECT_GE(m.p50_latency_cycles, 16.0);  // >= serialization latency
    EXPECT_LE(m.avg_latency_cycles, m.max_latency_cycles);
  }
}

INSTANTIATE_TEST_SUITE_P(VcAndPolicy, PolicySimProperties,
                         ::testing::Combine(::testing::Values<std::size_t>(1, 2, 4),
                                            ::testing::Bool()));

TEST(Percentiles, DegenerateWithoutDeliveries) {
  const topo::SwitchGraph graph = topo::GenerateIrregularTopology({8, 4, 3, 1, 1000});
  const route::UpDownRouting routing(graph);
  const work::Workload workload = work::Workload::Uniform(2, 16);
  Rng rng(1);
  const auto mapping = work::ProcessMapping::RandomAligned(graph, workload, rng);
  const TrafficPattern pattern(graph, workload, mapping);
  SimConfig config;
  config.warmup_cycles = 100;
  config.measure_cycles = 200;
  NetworkSimulator simulator(graph, routing, pattern, config);
  const SimMetrics m = simulator.Run(0.0);
  EXPECT_DOUBLE_EQ(m.p50_latency_cycles, 0.0);
  EXPECT_DOUBLE_EQ(m.max_latency_cycles, 0.0);
}

TEST(Percentiles, TailGrowsFasterThanMedianUnderLoad) {
  const topo::SwitchGraph graph = topo::GenerateIrregularTopology({16, 4, 3, 1, 1000});
  const route::UpDownRouting routing(graph);
  const work::Workload workload = work::Workload::Uniform(4, 16);
  Rng rng(9);
  const auto mapping = work::ProcessMapping::RandomAligned(graph, workload, rng);
  const TrafficPattern pattern(graph, workload, mapping);
  SimConfig config;
  config.warmup_cycles = 2000;
  config.measure_cycles = 8000;
  NetworkSimulator simulator(graph, routing, pattern, config);
  const SimMetrics low = simulator.Run(0.05);
  const SimMetrics mid = simulator.Run(0.35);
  // Congestion shows first in the tail: p99/p50 widens with load.
  EXPECT_GT(mid.p99_latency_cycles / mid.p50_latency_cycles,
            low.p99_latency_cycles / low.p50_latency_cycles);
}

}  // namespace
}  // namespace commsched::sim
