// Metamorphic tests for the quality functions (§4.1): F_G, D_G, and C_c are
// functions of the *grouping*, not of how switches are numbered or clusters
// labeled. Relabeling clusters and permuting switch indices consistently —
// table and partition together — must leave all three invariant.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "distance/distance_table.h"
#include "quality/partition.h"
#include "quality/quality.h"
#include "routing/updown.h"
#include "topology/generator.h"

namespace commsched {
namespace {

constexpr double kTol = 1e-9;

dist::DistanceTable RandomTable(std::size_t n, Rng& rng) {
  dist::DistanceTable table(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      table.Set(i, j, 0.25 + 4.0 * rng.NextDouble());
    }
  }
  return table;
}

/// T'(p(i), p(j)) = T(i, j): the same network with switches renumbered.
dist::DistanceTable PermuteTable(const dist::DistanceTable& table,
                                 const std::vector<std::size_t>& perm) {
  dist::DistanceTable permuted(table.size(), 0.0);
  for (std::size_t i = 0; i < table.size(); ++i) {
    for (std::size_t j = i + 1; j < table.size(); ++j) {
      permuted.Set(perm[i], perm[j], table(i, j));
    }
  }
  return permuted;
}

/// cluster_of'[p(s)] = relabel[cluster_of[s]]: the same grouping under the
/// renumbering, with cluster ids shuffled too.
qual::Partition PermutePartition(const qual::Partition& partition,
                                 const std::vector<std::size_t>& perm,
                                 const std::vector<std::size_t>& relabel) {
  std::vector<std::size_t> cluster_of(partition.switch_count());
  for (std::size_t s = 0; s < partition.switch_count(); ++s) {
    cluster_of[perm[s]] = relabel[partition.ClusterOf(s)];
  }
  return qual::Partition(cluster_of);
}

void ExpectInvariant(const dist::DistanceTable& table, const qual::Partition& partition,
                     const dist::DistanceTable& permuted_table,
                     const qual::Partition& permuted_partition, std::uint64_t seed) {
  EXPECT_NEAR(qual::GlobalSimilarity(table, partition),
              qual::GlobalSimilarity(permuted_table, permuted_partition), kTol)
      << "seed=" << seed;
  EXPECT_NEAR(qual::GlobalDissimilarity(table, partition),
              qual::GlobalDissimilarity(permuted_table, permuted_partition), kTol)
      << "seed=" << seed;
  EXPECT_NEAR(qual::ClusteringCoefficient(table, partition),
              qual::ClusteringCoefficient(permuted_table, permuted_partition), kTol)
      << "seed=" << seed;
}

TEST(MetamorphicQuality, InvariantUnderRelabelingAndPermutationRandomTables) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    const std::size_t clusters = 2 + rng.NextIndex(3);            // 2..4
    const std::size_t n = 2 * clusters + rng.NextIndex(15);       // >= 2 per cluster possible
    const dist::DistanceTable table = RandomTable(n, rng);

    // Random cluster sizes with every cluster >= 2 so F_Ai is defined for all.
    std::vector<std::size_t> sizes(clusters, 2);
    for (std::size_t extra = n - 2 * clusters; extra > 0; --extra) {
      ++sizes[rng.NextIndex(clusters)];
    }
    const qual::Partition partition = qual::Partition::Random(sizes, rng);

    const std::vector<std::size_t> perm = RandomPermutation(n, rng);
    const std::vector<std::size_t> relabel = RandomPermutation(clusters, rng);
    ExpectInvariant(table, partition, PermuteTable(table, perm),
                    PermutePartition(partition, perm, relabel), seed);
  }
}

// Pure cluster relabeling (identity switch permutation) — the weaker relation
// on its own, on a real equivalent-distance table.
TEST(MetamorphicQuality, InvariantOnRealTopologyTable) {
  topo::IrregularTopologyOptions options;
  options.switch_count = 16;
  const topo::SwitchGraph graph = topo::GenerateIrregularTopology(options);
  const route::UpDownRouting routing(graph);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);

  Rng rng(7);
  const qual::Partition partition = qual::Partition::Random({4, 4, 4, 4}, rng);
  std::vector<std::size_t> identity(table.size());
  for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;

  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    const std::vector<std::size_t> relabel = RandomPermutation(4, rng);
    ExpectInvariant(table, partition, table, PermutePartition(partition, identity, relabel),
                    trial);
    // And the full relation with a non-trivial switch permutation.
    const std::vector<std::size_t> perm = RandomPermutation(table.size(), rng);
    ExpectInvariant(table, partition, PermuteTable(table, perm),
                    PermutePartition(partition, perm, relabel), trial);
  }
}

}  // namespace
}  // namespace commsched
