#include "simnet/estimate.h"

#include <gtest/gtest.h>

#include "routing/updown.h"
#include "topology/generator.h"

namespace commsched::sim {
namespace {

struct Fixture {
  topo::SwitchGraph graph;
  route::UpDownRouting routing;
  work::Workload workload;
  work::ProcessMapping mapping;
  TrafficPattern pattern;

  Fixture()
      : graph(topo::GenerateIrregularTopology({16, 4, 3, 1, 1000})),
        routing(graph),
        workload(work::Workload::Uniform(4, 16)),
        mapping(Make(graph, workload)),
        pattern(graph, workload, mapping) {}

  static work::ProcessMapping Make(const topo::SwitchGraph& g, const work::Workload& w) {
    Rng rng(7);
    return work::ProcessMapping::RandomAligned(g, w, rng);
  }
};

TEST(Estimate, WeightsFromTrafficMatrixSymmetrizes) {
  std::vector<std::vector<double>> rates{{0.0, 1.0, 0.0},
                                         {3.0, 0.0, 2.0},
                                         {0.0, 0.0, 5.0}};  // diagonal dropped
  const qual::WeightMatrix w = WeightsFromTrafficMatrix(rates);
  EXPECT_EQ(w.size(), 3u);
  // Before normalization: w01 = 4, w12 = 2, w02 = 0. Ratios preserved.
  EXPECT_NEAR(w(0, 1) / w(1, 2), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(w(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(w(0, 0), 0.0);
}

TEST(Estimate, AnalyticWeightsMatchIntraclusterStructure) {
  const Fixture f;
  const qual::WeightMatrix w = sim::AnalyticSwitchWeights(f.graph, f.workload, f.mapping);
  const qual::Partition p = f.mapping.InducedPartition(f.graph);
  // With pure intracluster traffic, weight is nonzero exactly for
  // same-cluster switch pairs, and uniform across them.
  double intra_value = -1.0;
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = i + 1; j < 16; ++j) {
      if (p.ClusterOf(i) == p.ClusterOf(j)) {
        if (intra_value < 0) intra_value = w(i, j);
        EXPECT_NEAR(w(i, j), intra_value, 1e-9);
        EXPECT_GT(w(i, j), 0.0);
      } else {
        EXPECT_DOUBLE_EQ(w(i, j), 0.0);
      }
    }
  }
}

TEST(Estimate, AnalyticWeightsScaleWithAppIntensity) {
  const Fixture f;
  std::vector<work::ApplicationSpec> apps = f.workload.applications();
  apps[0].traffic_weight = 5.0;
  const work::Workload workload(apps);
  const qual::WeightMatrix w = sim::AnalyticSwitchWeights(f.graph, workload, f.mapping);
  const qual::Partition p = f.mapping.InducedPartition(f.graph);
  // Pick one intra pair of app 0 and one of app 1: ratio must be 5.
  double w0 = -1.0;
  double w1 = -1.0;
  for (std::size_t i = 0; i < 16 && (w0 < 0 || w1 < 0); ++i) {
    for (std::size_t j = i + 1; j < 16; ++j) {
      if (p.ClusterOf(i) != p.ClusterOf(j)) continue;
      if (p.ClusterOf(i) == 0 && w0 < 0) w0 = w(i, j);
      if (p.ClusterOf(i) == 1 && w1 < 0) w1 = w(i, j);
    }
  }
  ASSERT_GT(w0, 0.0);
  ASSERT_GT(w1, 0.0);
  EXPECT_NEAR(w0 / w1, 5.0, 1e-9);
}

TEST(Estimate, MeasuredWeightsApproximateAnalytic) {
  // The paper's future-work loop closed: simulate, measure, compare with
  // the model. At low load the measured matrix converges to the analytic
  // expectation.
  const Fixture f;
  SimConfig config;
  config.warmup_cycles = 2000;
  config.measure_cycles = 30000;
  const qual::WeightMatrix measured =
      MeasureSwitchWeights(f.graph, f.routing, f.pattern, config, 0.2);
  const qual::WeightMatrix analytic =
      AnalyticSwitchWeights(f.graph, f.workload, f.mapping);
  // Compare normalized matrices entrywise with a generous statistical
  // tolerance; also check zero-structure agreement.
  double worst = 0.0;
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = i + 1; j < 16; ++j) {
      if (analytic(i, j) == 0.0) {
        EXPECT_NEAR(measured(i, j), 0.0, 1e-9) << i << "," << j;
      } else {
        worst = std::max(worst, std::abs(measured(i, j) - analytic(i, j)) / analytic(i, j));
      }
    }
  }
  EXPECT_LT(worst, 0.25);  // within 25 % relative on every hot pair
}

TEST(Estimate, InterclusterFractionShowsUpInAnalyticWeights) {
  const Fixture f;
  std::vector<work::ApplicationSpec> apps = f.workload.applications();
  for (auto& app : apps) app.intercluster_fraction = 0.5;
  const work::Workload workload(apps);
  const qual::WeightMatrix w = sim::AnalyticSwitchWeights(f.graph, workload, f.mapping);
  const qual::Partition p = f.mapping.InducedPartition(f.graph);
  // Cross-cluster pairs now carry weight.
  bool any_cross = false;
  for (std::size_t i = 0; i < 16 && !any_cross; ++i) {
    for (std::size_t j = i + 1; j < 16; ++j) {
      if (p.ClusterOf(i) != p.ClusterOf(j) && w(i, j) > 0.0) {
        any_cross = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_cross);
}

TEST(Estimate, RateMatrixValidation) {
  std::vector<std::vector<double>> ragged{{0.0, 1.0}, {1.0}};
  EXPECT_THROW((void)WeightsFromTrafficMatrix(ragged), commsched::ContractError);
  std::vector<std::vector<double>> tiny{{0.0}};
  EXPECT_THROW((void)WeightsFromTrafficMatrix(tiny), commsched::ContractError);
}

}  // namespace
}  // namespace commsched::sim
