// Tests for the content-addressed artifact store (DESIGN.md §14): binary
// round-trips, header/hash corruption and truncation detection, atomic
// writes, model encode/decode fidelity, and the service's warm-boot path
// (a restart must serve a previously-seen model with zero re-solves).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/commsched.h"

namespace commsched {
namespace {

namespace fs = std::filesystem;
using svc::ArtifactKind;
using svc::ArtifactStore;

/// Fresh per-test store directory (removed and recreated so reruns and
/// counter-sharing tests start clean).
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "commsched_store_" + name;
  fs::remove_all(dir);
  return dir;
}

std::string OnlyFile(const std::string& dir) {
  std::string found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_TRUE(found.empty()) << "expected exactly one file in " << dir;
    found = entry.path().string();
  }
  EXPECT_FALSE(found.empty()) << "expected one file in " << dir;
  return found;
}

void CorruptByteAt(const std::string& path, std::size_t offset) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file) << path;
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
}

TEST(Store, PutGetRoundTripsPayloadBytes) {
  ArtifactStore store(FreshDir("roundtrip"));
  const std::string payload = std::string("binary\0payload", 14) + "\xff\x01";
  EXPECT_TRUE(store.Put(ArtifactKind::kModel, 42, payload));
  const auto got = store.Get(ArtifactKind::kModel, 42);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  const svc::StoreStats stats = store.Stats();
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.corrupt, 0u);
}

TEST(Store, MissingKeyIsAMissAndListKeysSeesOnlyArtifacts) {
  const std::string dir = FreshDir("listing");
  ArtifactStore store(dir);
  EXPECT_FALSE(store.Get(ArtifactKind::kModel, 7).has_value());
  EXPECT_EQ(store.Stats().misses, 1u);

  EXPECT_TRUE(store.Put(ArtifactKind::kModel, 0xabcdef0123456789ULL, "a"));
  EXPECT_TRUE(store.Put(ArtifactKind::kModel, 5, "b"));
  // Stray files — a temp leftover and an unrelated name — are not keys.
  std::ofstream(dir + "/.model-0000000000000005.csart.tmp123") << "partial";
  std::ofstream(dir + "/notes.txt") << "hello";
  const std::vector<std::uint64_t> keys = store.ListKeys(ArtifactKind::kModel);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], 5u);
  EXPECT_EQ(keys[1], 0xabcdef0123456789ULL);
}

TEST(Store, FileNameIsStableAndHexPadded) {
  EXPECT_EQ(ArtifactStore::FileName(ArtifactKind::kModel, 5), "model-0000000000000005.csart");
  EXPECT_EQ(ArtifactStore::FileName(ArtifactKind::kModel, 0xabcdef0123456789ULL),
            "model-abcdef0123456789.csart");
}

TEST(Store, DetectsPayloadCorruption) {
  const std::string dir = FreshDir("corrupt");
  ArtifactStore store(dir);
  ASSERT_TRUE(store.Put(ArtifactKind::kModel, 9, "the quick brown fox"));
  const std::string path = OnlyFile(dir);
  CorruptByteAt(path, 40 + 4);  // a payload byte past the 40-byte header

  const svc::VerifyResult verdict = ArtifactStore::VerifyFile(path);
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.error.find("hash mismatch"), std::string::npos) << verdict.error;

  EXPECT_FALSE(store.Get(ArtifactKind::kModel, 9).has_value());
  EXPECT_EQ(store.Stats().corrupt, 1u);
}

TEST(Store, DetectsTruncationAndBadMagicAndShortHeader) {
  const std::string dir = FreshDir("truncate");
  ArtifactStore store(dir);
  ASSERT_TRUE(store.Put(ArtifactKind::kModel, 11, "0123456789abcdef0123456789"));
  const std::string path = OnlyFile(dir);

  fs::resize_file(path, 40 + 10);  // drop payload tail
  svc::VerifyResult verdict = ArtifactStore::VerifyFile(path);
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.error.find("size mismatch"), std::string::npos) << verdict.error;
  EXPECT_FALSE(store.Get(ArtifactKind::kModel, 11).has_value());

  fs::resize_file(path, 17);  // not even a whole header
  verdict = ArtifactStore::VerifyFile(path);
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.error.find("truncated header"), std::string::npos) << verdict.error;

  ASSERT_TRUE(store.Put(ArtifactKind::kModel, 11, "0123456789abcdef0123456789"));
  CorruptByteAt(path, 0);  // magic
  verdict = ArtifactStore::VerifyFile(path);
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.error.find("bad magic"), std::string::npos) << verdict.error;
}

TEST(Store, PutOverwritesAtomicallyAndLeavesNoTempOnSuccess) {
  const std::string dir = FreshDir("atomic");
  ArtifactStore store(dir);
  ASSERT_TRUE(store.Put(ArtifactKind::kModel, 3, "first"));
  ASSERT_TRUE(store.Put(ArtifactKind::kModel, 3, "second"));
  const auto got = store.Get(ArtifactKind::kModel, 3);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "second");
  // rename() replaced the artifact in place: one visible file, no temps.
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    ++files;
    EXPECT_NE(entry.path().filename().string()[0], '.');
  }
  EXPECT_EQ(files, 1u);
}

// ------------------------------------------------- model serialization --

svc::TopologyRequest MixedTopology() {
  svc::TopologyRequest topology;
  topology.kind = "mixed";
  return topology;
}

TEST(Store, ModelArtifactRoundTripsRoutingAndDistances) {
  const auto original = std::make_shared<const svc::NetworkModel>(
      svc::BuildTopology(MixedTopology()));
  const std::string payload = svc::EncodeModelArtifact(*original);
  const auto restored = svc::DecodeModelArtifact(payload);

  EXPECT_EQ(topo::ToText(restored->graph), topo::ToText(original->graph));
  EXPECT_EQ(restored->routing.root(), original->routing.root());
  EXPECT_EQ(restored->table.size(), original->table.size());
  EXPECT_EQ(restored->table.MaxAbsDiff(original->table), 0.0);
  const std::size_t n = original->graph.switch_count();
  for (topo::SwitchId s = 0; s < n; ++s) {
    for (topo::SwitchId t = 0; t < n; ++t) {
      if (s == t) continue;
      EXPECT_EQ(restored->routing.MinimalDistance(s, t),
                original->routing.MinimalDistance(s, t));
      EXPECT_EQ(restored->routing.LinksOnMinimalPaths(s, t),
                original->routing.LinksOnMinimalPaths(s, t));
    }
  }
  EXPECT_EQ(svc::ModelHashOfGraph(restored->graph), svc::ModelHashOfGraph(original->graph));
}

TEST(Store, DecodeRejectsTruncatedAndTrailingPayloads) {
  const auto model = std::make_shared<const svc::NetworkModel>(
      svc::BuildTopology(MixedTopology()));
  const std::string payload = svc::EncodeModelArtifact(*model);
  EXPECT_THROW(svc::DecodeModelArtifact(payload.substr(0, payload.size() / 2)), ConfigError);
  EXPECT_THROW(svc::DecodeModelArtifact(payload + "x"), ConfigError);
  EXPECT_THROW(svc::DecodeModelArtifact(""), ConfigError);
}

// ------------------------------------------------------------ warm boot --

std::string ScheduleLine(const char* id) {
  return std::string(R"({"id":")") + id +
         R"(","op":"schedule","topology":{"kind":"mixed"},"apps":4,"seeds":2,"iters":10})";
}

TEST(Store, WarmBootServesModelWithoutResolving) {
  const std::string dir = FreshDir("warmboot");
  std::string cold_response;
  {
    svc::ServiceOptions options;
    options.store_dir = dir;
    svc::SchedulingService cold(options);
    cold_response = cold.Execute(svc::ParseRequest(ScheduleLine("cold")));
    EXPECT_NE(cold_response.find("\"ok\":true"), std::string::npos) << cold_response;
    EXPECT_EQ(cold.TopologyCacheStats().misses, 1u);
    ASSERT_NE(cold.store(), nullptr);
    EXPECT_EQ(cold.store()->Stats().writes, 1u);
  }  // daemon restart: in-memory caches are gone, the store survives

  svc::ServiceOptions options;
  options.store_dir = dir;
  svc::SchedulingService warm(options);
  EXPECT_EQ(warm.TopologyCacheStats().size, 1u);     // preloaded at boot
  EXPECT_EQ(warm.TopologyCacheStats().misses, 0u);   // Insert is not a miss
  ASSERT_NE(warm.store(), nullptr);
  EXPECT_GE(warm.store()->Stats().hits, 1u);

  // The restored model computes the byte-identical result; only the cache
  // marker differs (the warm run reports "hit" where the cold saw "miss").
  const std::string warm_response = warm.Execute(svc::ParseRequest(ScheduleLine("cold")));
  const svc::JsonValue warm_parsed = svc::ParseJson(warm_response);
  const svc::JsonValue cold_parsed = svc::ParseJson(cold_response);
  EXPECT_EQ(warm_parsed.Find("text")->AsString("text"),
            cold_parsed.Find("text")->AsString("text"));
  EXPECT_EQ(warm_parsed.Find("model_cache")->AsString("model_cache"), "hit");
  EXPECT_EQ(warm.TopologyCacheStats().misses, 0u);   // no re-solve
  EXPECT_EQ(warm.TopologyCacheStats().hits, 1u);
}

TEST(Store, WarmBootSkipsCorruptArtifactsAndRecovers) {
  const std::string dir = FreshDir("warmboot_corrupt");
  {
    svc::ServiceOptions options;
    options.store_dir = dir;
    svc::SchedulingService cold(options);
    (void)cold.Execute(svc::ParseRequest(ScheduleLine("seed")));
  }
  CorruptByteAt(OnlyFile(dir), 40 + 2);

  svc::ServiceOptions options;
  options.store_dir = dir;
  svc::SchedulingService warm(options);
  EXPECT_EQ(warm.TopologyCacheStats().size, 0u);  // corrupt artifact not loaded
  ASSERT_NE(warm.store(), nullptr);
  EXPECT_GE(warm.store()->Stats().corrupt, 1u);

  // The request still succeeds — cold solve — and rewrites a good artifact.
  const std::string response = warm.Execute(svc::ParseRequest(ScheduleLine("seed")));
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  EXPECT_EQ(warm.TopologyCacheStats().misses, 1u);
  EXPECT_EQ(ArtifactStore::VerifyFile(OnlyFile(dir)).ok, true);
}

TEST(Store, EvictedModelRestoresFromDiskInsteadOfResolving) {
  const std::string dir = FreshDir("evict");
  svc::ServiceOptions options;
  options.store_dir = dir;
  options.topology_cache_capacity = 1;
  svc::SchedulingService service(options);

  svc::TopologyRequest mixed = MixedTopology();
  svc::TopologyRequest rings;
  rings.kind = "rings";
  (void)service.GetModel(mixed);  // cold solve, persisted
  (void)service.GetModel(rings);  // evicts mixed (capacity 1)
  const std::uint64_t writes = service.store()->Stats().writes;
  EXPECT_EQ(writes, 2u);

  bool hit = true;
  (void)service.GetModel(mixed, nullptr, &hit);  // cache miss, store hit
  EXPECT_FALSE(hit);
  EXPECT_GE(service.store()->Stats().hits, 1u);
  EXPECT_EQ(service.store()->Stats().writes, writes);  // restored, not re-solved
}

TEST(Store, RejectsFileWhereDirectoryExpected) {
  const std::string path = ::testing::TempDir() + "commsched_store_not_a_dir";
  fs::remove_all(path);
  std::ofstream(path) << "file";
  EXPECT_THROW(ArtifactStore store(path), ConfigError);
}

}  // namespace
}  // namespace commsched
