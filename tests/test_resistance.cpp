#include "linalg/resistance.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace commsched::linalg {
namespace {

TEST(Resistance, SingleResistor) {
  ResistorNetwork net(2);
  net.Add(0, 1, 5.0);
  EXPECT_NEAR(net.EffectiveResistance(0, 1), 5.0, 1e-12);
}

TEST(Resistance, SeriesAdds) {
  ResistorNetwork net(3);
  net.Add(0, 1, 2.0);
  net.Add(1, 2, 3.0);
  EXPECT_NEAR(net.EffectiveResistance(0, 2), 5.0, 1e-12);
}

TEST(Resistance, ParallelCombines) {
  ResistorNetwork net(2);
  net.Add(0, 1, 2.0);
  net.Add(0, 1, 2.0);
  EXPECT_NEAR(net.EffectiveResistance(0, 1), 1.0, 1e-12);
}

TEST(Resistance, WheatstoneBridgeBalanced) {
  // Balanced bridge: the middle resistor carries no current, R = 1.
  ResistorNetwork net(4);
  net.Add(0, 1, 1.0);
  net.Add(1, 3, 1.0);
  net.Add(0, 2, 1.0);
  net.Add(2, 3, 1.0);
  net.Add(1, 2, 7.0);  // arbitrary bridge resistor
  EXPECT_NEAR(net.EffectiveResistance(0, 3), 1.0, 1e-12);
}

TEST(Resistance, UnitSquareCycle) {
  // A 4-cycle of unit resistors: opposite corners see 1Ω (2 || 2);
  // adjacent corners see 3/4 (1 || 3).
  ResistorNetwork net(4);
  net.Add(0, 1);
  net.Add(1, 2);
  net.Add(2, 3);
  net.Add(3, 0);
  EXPECT_NEAR(net.EffectiveResistance(0, 2), 1.0, 1e-12);
  EXPECT_NEAR(net.EffectiveResistance(0, 1), 0.75, 1e-12);
}

TEST(Resistance, SameTerminalIsZero) {
  ResistorNetwork net(3);
  net.Add(0, 1);
  net.Add(1, 2);
  EXPECT_DOUBLE_EQ(net.EffectiveResistance(1, 1), 0.0);
}

TEST(Resistance, DisconnectedThrows) {
  ResistorNetwork net(4);
  net.Add(0, 1);
  net.Add(2, 3);
  EXPECT_THROW((void)net.EffectiveResistance(0, 3), commsched::ContractError);
  EXPECT_FALSE(net.Connected(0, 2));
  EXPECT_TRUE(net.Connected(0, 1));
}

TEST(Resistance, InvalidResistorsRejected) {
  ResistorNetwork net(3);
  EXPECT_THROW(net.Add(0, 0), commsched::ContractError);
  EXPECT_THROW(net.Add(0, 1, 0.0), commsched::ContractError);
  EXPECT_THROW(net.Add(0, 1, -1.0), commsched::ContractError);
  EXPECT_THROW(net.Add(0, 3), commsched::ContractError);
}

TEST(Resistance, LaplacianRowSumsZero) {
  ResistorNetwork net(4);
  net.Add(0, 1, 2.0);
  net.Add(1, 2, 4.0);
  net.Add(2, 3, 1.0);
  net.Add(3, 0, 0.5);
  const Matrix l = net.Laplacian();
  for (std::size_t r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 4; ++c) sum += l(r, c);
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
  EXPECT_NEAR(l(0, 1), -0.5, 1e-12);  // conductance 1/2
}

TEST(Resistance, SymmetricInTerminals) {
  ResistorNetwork net(5);
  net.Add(0, 1);
  net.Add(1, 2);
  net.Add(2, 3);
  net.Add(3, 4);
  net.Add(4, 0);
  net.Add(1, 3);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) {
      EXPECT_NEAR(net.EffectiveResistance(i, j), net.EffectiveResistance(j, i), 1e-12);
    }
  }
}

// Property: Rayleigh monotonicity — adding a resistor can only lower (or
// keep) every effective resistance.
TEST(Resistance, RayleighMonotonicity) {
  commsched::Rng rng(17);
  ResistorNetwork net(6);
  // ring skeleton keeps it connected
  for (std::size_t i = 0; i < 6; ++i) net.Add(i, (i + 1) % 6);
  auto all_pairs = [](const ResistorNetwork& n) {
    std::vector<double> r;
    for (std::size_t i = 0; i < n.node_count(); ++i)
      for (std::size_t j = i + 1; j < n.node_count(); ++j)
        r.push_back(n.EffectiveResistance(i, j));
    return r;
  };
  auto before = all_pairs(net);
  net.Add(0, 3);  // chord
  auto after = all_pairs(net);
  for (std::size_t k = 0; k < before.size(); ++k) {
    EXPECT_LE(after[k], before[k] + 1e-12);
  }
  EXPECT_LT(after[2], before[2]);  // the (0,3) pair strictly improves
}

// Property: effective resistance is bounded by the shortest path length in
// unit-resistor networks.
TEST(Resistance, BoundedByShortestPath) {
  ResistorNetwork net(6);
  for (std::size_t i = 0; i + 1 < 6; ++i) net.Add(i, i + 1);
  net.Add(0, 5);
  // path 0..5 length 5 in series with direct link 1 => R(0,5) = 5*1/(5+1)
  EXPECT_NEAR(net.EffectiveResistance(0, 5), 5.0 / 6.0, 1e-12);
  EXPECT_LE(net.EffectiveResistance(0, 5), 1.0);
}

TEST(Resistance, AllPairsMatchesPairwise) {
  ResistorNetwork net(5);
  net.Add(0, 1);
  net.Add(1, 2);
  net.Add(2, 3);
  net.Add(3, 4);
  net.Add(4, 0);
  net.Add(0, 2, 2.0);
  const Matrix all = AllPairsEffectiveResistance(net);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(all(i, i), 0.0, 1e-10);
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(all(i, j), net.EffectiveResistance(i, j), 1e-9);
    }
  }
}

TEST(Resistance, AllPairsRequiresConnected) {
  ResistorNetwork net(3);
  net.Add(0, 1);
  EXPECT_THROW((void)AllPairsEffectiveResistance(net), commsched::ContractError);
}

TEST(Resistance, IgnoresIrrelevantDisconnectedComponent) {
  // Nodes 3,4 are a separate component; R(0,2) must still work.
  ResistorNetwork net(5);
  net.Add(0, 1);
  net.Add(1, 2);
  net.Add(3, 4);
  EXPECT_NEAR(net.EffectiveResistance(0, 2), 2.0, 1e-12);
}

}  // namespace
}  // namespace commsched::linalg
