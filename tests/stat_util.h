// Statistical-equivalence primitives for the differential simulator tests
// (ISSUE 6). The event engine is *statistically* equivalent to the cycle
// engine — arbitration scan order differs, so per-run outputs are not
// byte-identical — which rules out golden-value comparison. Instead the
// harness runs both engines across seeds and requires:
//   * the difference of sample means to be inside a Welch confidence
//     interval widened by an application margin, and
//   * the empirical latency distributions to pass a two-sample
//     Kolmogorov-Smirnov bound.
// Header-only; test-tree only (not part of the library).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.h"

namespace commsched::testing {

struct SampleStats {
  std::size_t n = 0;
  double mean = 0.0;
  double variance = 0.0;  // unbiased (n - 1 denominator)
};

[[nodiscard]] inline SampleStats Summarize(const std::vector<double>& xs) {
  SampleStats s;
  s.n = xs.size();
  if (s.n == 0) return s;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  s.mean = sum / static_cast<double>(s.n);
  if (s.n < 2) return s;
  double ss = 0.0;
  for (const double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.variance = ss / static_cast<double>(s.n - 1);
  return s;
}

/// Two-sided standard-normal quantile z with P(|Z| <= z) = 1 - alpha,
/// via Acklam's rational approximation of the inverse normal CDF
/// (relative error < 1.2e-9 — far below statistical noise here).
[[nodiscard]] inline double NormalQuantileTwoSided(double alpha) {
  CS_CHECK(alpha > 0.0 && alpha < 1.0, "alpha out of range: ", alpha);
  const double p = 1.0 - alpha / 2.0;  // upper quantile position
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return ((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0));
  }
  if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0));
}

/// Student-t two-sided quantile with `df` degrees of freedom, from the
/// normal quantile via the Cornish-Fisher expansion — accurate to a few
/// percent for df >= 5, which only makes the CI slightly conservative.
[[nodiscard]] inline double StudentTQuantileTwoSided(double alpha, double df) {
  CS_CHECK(df > 0.0, "degrees of freedom must be positive");
  const double z = NormalQuantileTwoSided(alpha);
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  return z + (z3 + z) / (4.0 * df) +
         (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * df * df);
}

struct WelchResult {
  double mean_diff = 0.0;  // mean(a) - mean(b)
  double half_width = 0.0;  // CI is mean_diff +/- half_width
  double df = 0.0;          // Welch-Satterthwaite degrees of freedom
};

/// Welch two-sample confidence interval for the difference of means at
/// confidence level 1 - alpha (unequal variances, unequal sizes).
[[nodiscard]] inline WelchResult WelchMeanDifference(const std::vector<double>& a,
                                                    const std::vector<double>& b,
                                                    double alpha) {
  const SampleStats sa = Summarize(a);
  const SampleStats sb = Summarize(b);
  CS_CHECK(sa.n >= 2 && sb.n >= 2, "Welch CI needs >= 2 samples per side");
  WelchResult r;
  r.mean_diff = sa.mean - sb.mean;
  const double va = sa.variance / static_cast<double>(sa.n);
  const double vb = sb.variance / static_cast<double>(sb.n);
  const double se2 = va + vb;
  if (se2 <= 0.0) {
    // Both samples are constant: the CI collapses to the point difference.
    r.half_width = 0.0;
    r.df = static_cast<double>(sa.n + sb.n - 2);
    return r;
  }
  r.df = se2 * se2 /
         (va * va / static_cast<double>(sa.n - 1) + vb * vb / static_cast<double>(sb.n - 1));
  r.half_width = StudentTQuantileTwoSided(alpha, r.df) * std::sqrt(se2);
  return r;
}

/// True when the two samples' means agree at level alpha up to `margin`:
/// the Welch CI of mean(a) - mean(b), widened by margin, contains zero.
/// `margin` absorbs genuine (tiny) model differences between the engines.
[[nodiscard]] inline bool MeansEquivalent(const std::vector<double>& a,
                                          const std::vector<double>& b, double alpha,
                                          double margin) {
  const WelchResult r = WelchMeanDifference(a, b, alpha);
  return std::abs(r.mean_diff) <= r.half_width + margin;
}

/// Two-sample Kolmogorov-Smirnov statistic: the maximum gap between the
/// empirical CDFs of a and b. Inputs need not be sorted.
[[nodiscard]] inline double KsStatistic(std::vector<double> a, std::vector<double> b) {
  CS_CHECK(!a.empty() && !b.empty(), "KS statistic needs non-empty samples");
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  double gap = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    gap = std::max(gap, std::abs(static_cast<double>(i) / na -
                                 static_cast<double>(j) / nb));
  }
  return gap;
}

/// Rejection threshold for the two-sample KS statistic at level alpha
/// (asymptotic Kolmogorov bound): samples from the same distribution exceed
/// it with probability <= alpha.
[[nodiscard]] inline double KsBound(std::size_t n, std::size_t m, double alpha) {
  CS_CHECK(n > 0 && m > 0, "KS bound needs positive sample sizes");
  CS_CHECK(alpha > 0.0 && alpha < 1.0, "alpha out of range: ", alpha);
  const double nn = static_cast<double>(n);
  const double mm = static_cast<double>(m);
  return std::sqrt(-std::log(alpha / 2.0) / 2.0 * (nn + mm) / (nn * mm));
}

/// True when the KS statistic of the two samples is within the alpha bound
/// plus `margin` (same role as in MeansEquivalent).
[[nodiscard]] inline bool DistributionsEquivalent(const std::vector<double>& a,
                                                  const std::vector<double>& b,
                                                  double alpha, double margin = 0.0) {
  return KsStatistic(a, b) <= KsBound(a.size(), b.size(), alpha) + margin;
}

}  // namespace commsched::testing
