// Per-application simulator metrics and the saturation-load search.
#include <gtest/gtest.h>

#include "routing/updown.h"
#include "simnet/simulator.h"
#include "simnet/sweep.h"
#include "topology/generator.h"

namespace commsched::sim {
namespace {

struct Fixture {
  topo::SwitchGraph graph;
  route::UpDownRouting routing;
  work::Workload workload;
  work::ProcessMapping mapping;
  TrafficPattern pattern;

  explicit Fixture(work::Workload w)
      : graph(topo::GenerateIrregularTopology({16, 4, 3, 1, 1000})),
        routing(graph),
        workload(std::move(w)),
        mapping(Make(graph, workload)),
        pattern(graph, workload, mapping) {}

  static work::ProcessMapping Make(const topo::SwitchGraph& g, const work::Workload& w) {
    Rng rng(5);
    return work::ProcessMapping::RandomAligned(g, w, rng);
  }
};

SimConfig FastConfig() {
  SimConfig config;
  config.warmup_cycles = 2000;
  config.measure_cycles = 8000;
  return config;
}

TEST(PerAppMetrics, SumsMatchTotals) {
  const Fixture f(work::Workload::Uniform(4, 16));
  NetworkSimulator sim(f.graph, f.routing, f.pattern, FastConfig());
  const SimMetrics m = sim.Run(0.2);
  ASSERT_EQ(m.per_app.size(), 4u);
  std::size_t msgs = 0;
  std::size_t flits = 0;
  for (const auto& app : m.per_app) {
    msgs += app.messages_delivered;
    flits += app.flits_delivered;
    EXPECT_GT(app.messages_delivered, 0u);
    EXPECT_GE(app.avg_latency_cycles, 16.0);  // >= message length
  }
  EXPECT_EQ(msgs, m.messages_delivered);
  EXPECT_EQ(flits, m.flits_delivered);
}

TEST(PerAppMetrics, HotAppDeliversProportionallyMore) {
  std::vector<work::ApplicationSpec> apps = work::Workload::Uniform(4, 16).applications();
  apps[0].traffic_weight = 5.0;
  const Fixture f{work::Workload(apps)};
  NetworkSimulator sim(f.graph, f.routing, f.pattern, FastConfig());
  const SimMetrics m = sim.Run(0.2);
  // App 0 injects 5x per host: at low load it delivers ~5x the flits.
  const double ratio = static_cast<double>(m.per_app[0].flits_delivered) /
                       static_cast<double>(m.per_app[1].flits_delivered);
  EXPECT_GT(ratio, 3.5);
  EXPECT_LT(ratio, 6.5);
}

TEST(PerAppMetrics, ZeroWeightAppDeliversNothing) {
  std::vector<work::ApplicationSpec> apps = work::Workload::Uniform(4, 16).applications();
  apps[2].traffic_weight = 0.0;
  const Fixture f{work::Workload(apps)};
  NetworkSimulator sim(f.graph, f.routing, f.pattern, FastConfig());
  const SimMetrics m = sim.Run(0.2);
  EXPECT_EQ(m.per_app[2].messages_delivered, 0u);
  EXPECT_DOUBLE_EQ(m.per_app[2].avg_latency_cycles, 0.0);
}

TEST(SweepPolicyOverload, MatchesRoutingOverloadForSingleClass) {
  const Fixture f(work::Workload::Uniform(4, 16));
  SweepOptions options;
  options.points = 3;
  options.min_rate = 0.1;
  options.max_rate = 0.5;
  options.config = FastConfig();
  const SweepResult via_routing = RunLoadSweep(f.graph, f.routing, f.pattern, options);
  const SingleClassVcPolicy policy(f.routing, 1, false);
  const SweepResult via_policy = RunLoadSweep(f.graph, policy, f.pattern, options);
  ASSERT_EQ(via_routing.points.size(), via_policy.points.size());
  for (std::size_t k = 0; k < via_routing.points.size(); ++k) {
    EXPECT_EQ(via_routing.points[k].metrics.flits_delivered,
              via_policy.points[k].metrics.flits_delivered);
  }
}

TEST(SaturationSearch, FindsAPointNearTheKnee) {
  const Fixture f(work::Workload::Uniform(4, 16));
  const SimConfig config = FastConfig();
  const double knee = FindSaturationLoad(f.graph, f.routing, f.pattern, config, 0.05, 2.0, 0.05);
  EXPECT_GT(knee, 0.05);
  EXPECT_LT(knee, 2.0);
  // Just below the knee: not saturated. Well above: saturated.
  NetworkSimulator below(f.graph, f.routing, f.pattern, config);
  EXPECT_FALSE(below.Run(knee).Saturated());
  NetworkSimulator above(f.graph, f.routing, f.pattern, config);
  EXPECT_TRUE(above.Run(knee + 0.3).Saturated());
}

TEST(SaturationSearch, ValidatesRange) {
  const Fixture f(work::Workload::Uniform(4, 16));
  const SimConfig config = FastConfig();
  EXPECT_THROW(
      (void)FindSaturationLoad(f.graph, f.routing, f.pattern, config, 0.5, 0.4, 0.01),
      commsched::ContractError);
  EXPECT_THROW(
      (void)FindSaturationLoad(f.graph, f.routing, f.pattern, config, 0.1, 2.0, 0.0),
      commsched::ContractError);
}

}  // namespace
}  // namespace commsched::sim
