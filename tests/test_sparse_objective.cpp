// Sparse-QAP evaluator properties (quality/sparse.h, DESIGN.md §13).
//
// The load-bearing guarantee is sparse-vs-dense parity: on a clique-per-
// cluster communication graph with one unit-size vertex per switch, the
// sparse cost must equal the dense SwapEvaluator's intracluster sum and
// every SwapDelta must agree, across random tables and random partitions.
// The rest are incremental-maintenance properties: deltas predict observed
// differences, the running cost matches an O(E) recompute, and the
// per-vertex gain cache stays consistent (Σ VertexCost == 2·Cost).
#include "quality/sparse.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "distance/distance_table.h"
#include "quality/comm_graph.h"
#include "quality/partition.h"
#include "quality/quality.h"
#include "workload/procgen.h"

namespace commsched {
namespace {

constexpr double kTol = 1e-9;

dist::DistanceTable RandomTable(std::size_t n, Rng& rng) {
  dist::DistanceTable table(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      table.Set(i, j, 0.5 + 3.0 * rng.NextDouble());
    }
  }
  return table;
}

std::vector<std::size_t> RandomClusterSizes(std::size_t n, std::size_t clusters, Rng& rng) {
  std::vector<std::size_t> sizes(clusters, 1);
  for (std::size_t extra = n - clusters; extra > 0; --extra) {
    ++sizes[rng.NextIndex(clusters)];
  }
  return sizes;
}

/// Identity placement: vertex v on switch v (the parity bridge puts one
/// clique vertex per switch).
std::vector<std::size_t> Identity(std::size_t n) {
  std::vector<std::size_t> ids(n);
  for (std::size_t v = 0; v < n; ++v) ids[v] = v;
  return ids;
}

TEST(SparseObjective, CostMatchesHandComputedExample) {
  // Path 0-1-2 on a 3-switch line with hop distances.
  dist::DistanceTable table(3, 0.0);
  table.Set(0, 1, 1.0);
  table.Set(1, 2, 1.0);
  table.Set(0, 2, 2.0);
  const qual::CommGraph graph =
      qual::CommGraph::FromEdges(3, {{0, 1, 1.0}, {1, 2, 2.0}});
  const qual::SparseQapEvaluator eval(graph, table, {0, 2, 1});
  // Edge (0,1): w=1, T(0,2)=2 -> 4. Edge (1,2): w=2, T(2,1)=1 -> 2.
  EXPECT_NEAR(eval.Cost(), 6.0, kTol);
}

TEST(SparseObjective, CliqueCostEqualsDenseIntraSum) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const std::size_t n = 6 + rng.NextIndex(15);
    const std::size_t clusters = 2 + rng.NextIndex(3);
    const dist::DistanceTable table = RandomTable(n, rng);
    const qual::Partition partition =
        qual::Partition::Random(RandomClusterSizes(n, clusters, rng), rng);

    const qual::CommGraph graph = qual::CommGraph::CliqueGroups(partition.cluster_of_switch());
    const qual::SparseQapEvaluator sparse(graph, table, Identity(n));
    const qual::SwapEvaluator dense(table, partition);

    EXPECT_NEAR(sparse.Cost(), dense.IntraSum(), kTol) << "seed=" << seed;
    EXPECT_NEAR(sparse.NormalizedCost(), qual::GlobalSimilarity(table, partition), kTol)
        << "seed=" << seed;
  }
}

TEST(SparseObjective, CliqueSwapDeltaMatchesDenseSwapEvaluator) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const std::size_t n = 6 + rng.NextIndex(15);
    const std::size_t clusters = 2 + rng.NextIndex(3);
    const dist::DistanceTable table = RandomTable(n, rng);
    qual::Partition partition =
        qual::Partition::Random(RandomClusterSizes(n, clusters, rng), rng);

    const qual::CommGraph graph = qual::CommGraph::CliqueGroups(partition.cluster_of_switch());
    qual::SparseQapEvaluator sparse(graph, table, Identity(n));
    qual::SwapEvaluator dense(table, partition);
    // Dense swaps exchange *switches* between clusters; the sparse
    // equivalent exchanges the vertices currently hosted on those switches.
    std::vector<std::size_t> vertex_on = Identity(n);

    for (int step = 0; step < 10; ++step) {
      std::size_t a = rng.NextIndex(n);
      std::size_t b = rng.NextIndex(n);
      if (a == b || dense.partition().ClusterOf(a) == dense.partition().ClusterOf(b)) {
        continue;
      }
      const std::size_t va = vertex_on[a];
      const std::size_t vb = vertex_on[b];
      EXPECT_NEAR(sparse.SwapDelta(va, vb), dense.SwapDelta(a, b), kTol)
          << "seed=" << seed << " step=" << step;
      sparse.ApplySwap(va, vb);
      dense.ApplySwap(a, b);
      std::swap(vertex_on[a], vertex_on[b]);
      EXPECT_NEAR(sparse.Cost(), dense.IntraSum(), kTol) << "seed=" << seed;
    }
  }
}

TEST(SparseObjective, DeltasPredictObservedDifferences) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(100 + seed);
    const std::size_t n = 12 + rng.NextIndex(20);
    const std::size_t switches = 4 + rng.NextIndex(4);
    const dist::DistanceTable table = RandomTable(switches, rng);
    const qual::CommGraph graph = work::MakeRandomComm(n, 4, seed);

    std::vector<std::size_t> placement(n);
    for (std::size_t v = 0; v < n; ++v) placement[v] = rng.NextIndex(switches);
    qual::SparseQapEvaluator eval(graph, table, std::move(placement));

    for (int step = 0; step < 16; ++step) {
      const double before = eval.Cost();
      if (step % 2 == 0) {
        const std::size_t a = rng.NextIndex(n);
        const std::size_t b = rng.NextIndex(n);
        if (a == b) continue;
        const double predicted = eval.SwapDelta(a, b);
        eval.ApplySwap(a, b);
        EXPECT_NEAR(eval.Cost() - before, predicted, kTol) << "seed=" << seed;
      } else {
        const std::size_t v = rng.NextIndex(n);
        const std::size_t s = rng.NextIndex(switches);
        const double predicted = eval.MoveDelta(v, s);
        eval.ApplyMove(v, s);
        EXPECT_NEAR(eval.Cost() - before, predicted, kTol) << "seed=" << seed;
      }
      EXPECT_NEAR(eval.Cost(), eval.RecomputeCost(), kTol) << "seed=" << seed;
    }
  }
}

TEST(SparseObjective, GainCacheAndLoadsStayConsistent) {
  Rng rng(7);
  const dist::DistanceTable table = RandomTable(5, rng);
  const qual::CommGraph graph = work::MakeGridComm(24);
  std::vector<std::size_t> placement(24);
  for (std::size_t v = 0; v < 24; ++v) placement[v] = rng.NextIndex(5);
  qual::SparseQapEvaluator eval(graph, table, std::move(placement));

  for (int step = 0; step < 30; ++step) {
    eval.ApplyMove(rng.NextIndex(24), rng.NextIndex(5));
    double contrib_sum = 0.0;
    for (std::size_t v = 0; v < 24; ++v) contrib_sum += eval.VertexCost(v);
    EXPECT_NEAR(contrib_sum, 2.0 * eval.Cost(), kTol);
    std::size_t load_sum = 0;
    for (std::size_t s = 0; s < 5; ++s) load_sum += eval.load()[s];
    EXPECT_EQ(load_sum, graph.total_vertex_size());
  }
}

TEST(SparseObjective, SameSwitchSwapAndMoveAreFree) {
  Rng rng(9);
  const dist::DistanceTable table = RandomTable(4, rng);
  const qual::CommGraph graph = work::MakeRingComm(8);
  qual::SparseQapEvaluator eval(graph, table, {0, 0, 1, 1, 2, 2, 3, 3});
  EXPECT_NEAR(eval.SwapDelta(0, 1), 0.0, kTol);     // same switch
  EXPECT_NEAR(eval.MoveDelta(2, 1), 0.0, kTol);     // already there
}

TEST(SparseObjective, CommGraphCanonicalizesAndMergesEdges) {
  const qual::CommGraph graph = qual::CommGraph::FromEdges(
      4, {{2, 1, 1.0}, {1, 2, 0.5}, {0, 3, 2.0}});
  ASSERT_EQ(graph.edge_count(), 2u);
  EXPECT_EQ(graph.edges()[0].u, 0u);
  EXPECT_EQ(graph.edges()[0].v, 3u);
  EXPECT_NEAR(graph.edges()[1].weight, 1.5, kTol);  // (1,2) merged
  EXPECT_NEAR(graph.TotalEdgeWeight(), 3.5, kTol);
  EXPECT_EQ(graph.Degree(1), 1u);
  EXPECT_EQ(graph.NeighborsBegin(1)->vertex, 2u);
}

TEST(SparseObjective, CommGraphRejectsBadEdges) {
  EXPECT_THROW(qual::CommGraph::FromEdges(0, {}), ConfigError);
  EXPECT_THROW(qual::CommGraph::FromEdges(3, {{1, 1, 1.0}}), ConfigError);
  EXPECT_THROW(qual::CommGraph::FromEdges(3, {{0, 3, 1.0}}), ConfigError);
  EXPECT_THROW(qual::CommGraph::FromEdges(3, {{0, 1, 0.0}}), ConfigError);
  EXPECT_THROW(qual::CommGraph::FromEdges(3, {{0, 1, -2.0}}), ConfigError);
}

TEST(SparseObjective, CommGraphTextRoundTrips) {
  const qual::CommGraph graph = qual::CommGraph::FromEdges(
      5, {{0, 1, 1.0}, {1, 2, 2.5}, {3, 4, 0.25}}, {1, 2, 1, 3, 1});
  const qual::CommGraph back = qual::CommGraph::FromText(graph.ToText());
  EXPECT_EQ(back.vertex_count(), graph.vertex_count());
  EXPECT_EQ(back.edges(), graph.edges());
  for (std::size_t v = 0; v < 5; ++v) {
    EXPECT_EQ(back.vertex_size(v), graph.vertex_size(v));
  }
}

TEST(SparseObjective, PatternGeneratorsProduceExpectedShapes) {
  const qual::CommGraph ring = work::MakeRingComm(10);
  EXPECT_EQ(ring.edge_count(), 10u);
  for (std::size_t v = 0; v < 10; ++v) EXPECT_EQ(ring.Degree(v), 2u);

  const qual::CommGraph grid = work::MakeGridComm(12);  // 3 x 4 stencil
  EXPECT_EQ(grid.vertex_count(), 12u);
  EXPECT_EQ(grid.edge_count(), 2u * 12u - 3u - 4u);  // rows*(cols-1)+cols*(rows-1)

  const qual::CommGraph random = work::MakeRandomComm(50, 4, 3);
  EXPECT_EQ(random.vertex_count(), 50u);
  EXPECT_GT(random.edge_count(), 50u);  // ~100 draws minus merges/self-skips
  const qual::CommGraph again = work::MakeRandomComm(50, 4, 3);
  EXPECT_EQ(random.edges(), again.edges());  // deterministic in the seed

  EXPECT_THROW(work::MakePatternComm("bogus", 8, 1), ConfigError);
  EXPECT_THROW(work::MakePatternComm("ring", 0, 1), ConfigError);
}

}  // namespace
}  // namespace commsched
