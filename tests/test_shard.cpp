// Property tests for the consistent-hash shard ring (DESIGN.md §14):
// determinism across instances, balance under the default vnode count, the
// ≤2/N key-movement bound on fleet growth/shrink, and the request routing
// key (model-hash canonicalization, batch routing, error fallbacks).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/commsched.h"

namespace commsched {
namespace {

using svc::ShardRing;

std::vector<std::string> Fleet(std::size_t n) {
  std::vector<std::string> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back("127.0.0.1:" + std::to_string(9100 + i));
  }
  return nodes;
}

/// Deterministic pseudo-random key stream (splitmix64) so the distribution
/// properties are reproducible without seeding from the clock.
std::vector<std::uint64_t> Keys(std::size_t count) {
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < count; ++i) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    keys.push_back(z ^ (z >> 31));
  }
  return keys;
}

TEST(Shard, RejectsDegenerateFleets) {
  EXPECT_THROW(ShardRing({}), ConfigError);
  EXPECT_THROW(ShardRing({"a", ""}), ConfigError);
  EXPECT_THROW(ShardRing({"a", "b", "a"}), ConfigError);
  // vnodes is clamped, not rejected: a misconfigured 0 still yields a ring.
  EXPECT_EQ(ShardRing({"a"}, 0).vnodes_per_node(), 1u);
}

TEST(Shard, SingleNodeOwnsEverything) {
  const ShardRing ring(Fleet(1));
  for (const std::uint64_t key : Keys(100)) {
    EXPECT_EQ(ring.NodeIndexOf(key), 0u);
  }
}

TEST(Shard, DeterministicAcrossInstancesAndNodeOrder) {
  const ShardRing a(Fleet(5));
  const ShardRing b(Fleet(5));
  // Ownership is a pure function of the address strings, not of the order
  // the operator listed them in --fleet.
  std::vector<std::string> shuffled = Fleet(5);
  std::swap(shuffled[0], shuffled[3]);
  std::swap(shuffled[1], shuffled[4]);
  const ShardRing c(shuffled);
  for (const std::uint64_t key : Keys(2000)) {
    EXPECT_EQ(a.OwnerOf(key), b.OwnerOf(key));
    EXPECT_EQ(a.OwnerOf(key), c.OwnerOf(key));
  }
}

TEST(Shard, DefaultVnodesKeepShardsRoughlyBalanced) {
  const std::size_t kNodes = 4;
  const std::size_t kKeys = 20000;
  const ShardRing ring(Fleet(kNodes));
  std::map<std::string, std::size_t> load;
  for (const std::uint64_t key : Keys(kKeys)) {
    load[ring.OwnerOf(key)]++;
  }
  EXPECT_EQ(load.size(), kNodes);  // every shard owns some keys
  const double mean = static_cast<double>(kKeys) / kNodes;
  for (const auto& [node, count] : load) {
    EXPECT_LT(count, mean * 1.6) << node << " is overloaded";
    EXPECT_GT(count, mean * 0.4) << node << " is starved";
  }
}

TEST(Shard, AddingANodeOnlyMovesKeysToTheNewNode) {
  const std::vector<std::uint64_t> keys = Keys(5000);
  const ShardRing before(Fleet(4));
  std::vector<std::string> grown = Fleet(4);
  grown.push_back("127.0.0.1:9999");
  const ShardRing after(grown);

  std::size_t moved = 0;
  for (const std::uint64_t key : keys) {
    const std::string& old_owner = before.OwnerOf(key);
    const std::string& new_owner = after.OwnerOf(key);
    if (new_owner != old_owner) {
      ++moved;
      // Consistency: a key never migrates between surviving nodes.
      EXPECT_EQ(new_owner, "127.0.0.1:9999");
    }
  }
  // ~1/5 of keys should move to the 5th node; assert the ≤ 2/N bound.
  EXPECT_GT(moved, 0u);
  EXPECT_LE(moved, keys.size() * 2 / grown.size());
}

TEST(Shard, RemovingANodeOnlyReassignsItsKeys) {
  const std::vector<std::uint64_t> keys = Keys(5000);
  const std::vector<std::string> full = Fleet(5);
  const ShardRing before(full);
  std::vector<std::string> shrunk(full.begin(), full.end() - 1);
  const ShardRing after(shrunk);

  std::size_t moved = 0;
  for (const std::uint64_t key : keys) {
    const std::string& old_owner = before.OwnerOf(key);
    if (old_owner == full.back()) {
      ++moved;  // orphaned keys must land somewhere among the survivors
    } else {
      EXPECT_EQ(after.OwnerOf(key), old_owner);  // everyone else stays put
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LE(moved, keys.size() * 2 / full.size());
}

// ---------------------------------------------------------- routing keys --

TEST(Shard, ModelOpsRouteByTopologyNotSpelling) {
  // Two spellings of the same topology — different ids, ops, and knobs —
  // must produce one routing key, so they share one shard's model cache.
  const auto schedule = svc::ParseRequest(
      R"({"id":"a","op":"schedule","topology":{"kind":"mixed"},"apps":4})");
  const auto quality = svc::ParseRequest(
      R"({"id":"b","op":"quality","topology":{"kind":"mixed"},"apps":2})");
  EXPECT_EQ(svc::ShardKeyOf(schedule), svc::ShardKeyOf(quality));
  EXPECT_EQ(svc::ShardKeyOf(schedule),
            svc::TopologyModelHash(schedule.topology));

  const auto other = svc::ParseRequest(
      R"({"id":"a","op":"schedule","topology":{"kind":"rings"},"apps":4})");
  EXPECT_NE(svc::ShardKeyOf(schedule), svc::ShardKeyOf(other));
}

TEST(Shard, NonModelOpsRouteByIdHash) {
  const auto ping_a = svc::ParseRequest(R"({"id":"a","op":"ping"})");
  const auto ping_a2 = svc::ParseRequest(R"({"id":"a","op":"ping"})");
  const auto ping_b = svc::ParseRequest(R"({"id":"b","op":"ping"})");
  EXPECT_EQ(svc::ShardKeyOf(ping_a), svc::ShardKeyOf(ping_a2));
  EXPECT_NE(svc::ShardKeyOf(ping_a), svc::ShardKeyOf(ping_b));
}

TEST(Shard, BatchRoutesByFirstModelSubRequest) {
  const auto batch = svc::ParseRequest(
      R"({"id":"frame","op":"batch","requests":[)"
      R"({"id":"p","op":"ping"},)"
      R"({"id":"s","op":"schedule","topology":{"kind":"mixed"},"apps":4},)"
      R"({"id":"t","op":"schedule","topology":{"kind":"rings"},"apps":4}]})");
  const auto standalone = svc::ParseRequest(
      R"({"id":"s","op":"schedule","topology":{"kind":"mixed"},"apps":4})");
  EXPECT_EQ(svc::ShardKeyOf(batch), svc::ShardKeyOf(standalone));
}

TEST(Shard, UnbuildableTopologyFallsBackToIdHash) {
  // An invalid spec must still route somewhere — the owning daemon renders
  // the build error — so ShardKeyOf has to be total.
  const auto bad = svc::ParseRequest(
      R"({"id":"x","op":"schedule","topology":{"kind":"torus3d","x":2,"y":3,"z":3}})");
  const auto ping_x = svc::ParseRequest(R"({"id":"x","op":"ping"})");
  EXPECT_EQ(svc::ShardKeyOf(bad), svc::ShardKeyOf(ping_x));
}

}  // namespace
}  // namespace commsched
