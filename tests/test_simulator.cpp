#include "simnet/simulator.h"

#include <gtest/gtest.h>

#include "routing/shortest_path.h"
#include "routing/updown.h"
#include "topology/generator.h"
#include "topology/library.h"

namespace commsched::sim {
namespace {

struct Fixture {
  topo::SwitchGraph graph;
  route::UpDownRouting routing;
  work::Workload workload;
  work::ProcessMapping mapping;
  TrafficPattern pattern;

  explicit Fixture(std::uint64_t seed = 1, std::size_t switches = 16)
      : graph(topo::GenerateIrregularTopology({switches, 4, 3, seed, 1000})),
        routing(graph),
        workload(work::Workload::Uniform(4, switches)),
        mapping(MakeMapping(graph, workload, seed)),
        pattern(graph, workload, mapping) {}

  static work::ProcessMapping MakeMapping(const topo::SwitchGraph& g,
                                          const work::Workload& w, std::uint64_t seed) {
    Rng rng(seed);
    return work::ProcessMapping::RandomAligned(g, w, rng);
  }
};

SimConfig FastConfig() {
  SimConfig config;
  config.warmup_cycles = 2000;
  config.measure_cycles = 6000;
  return config;
}

TEST(Simulator, LowLoadDeliversEverythingOffered) {
  const Fixture f;
  NetworkSimulator sim(f.graph, f.routing, f.pattern, FastConfig());
  const SimMetrics m = sim.Run(0.05);
  EXPECT_GT(m.messages_delivered, 100u);
  EXPECT_NEAR(m.offered_flits_per_switch_cycle, 0.05, 0.01);
  // Below saturation accepted tracks offered.
  EXPECT_NEAR(m.accepted_flits_per_switch_cycle, m.offered_flits_per_switch_cycle, 0.01);
  EXPECT_FALSE(m.Saturated());
  EXPECT_FALSE(m.deadlock_detected);
  EXPECT_LT(m.source_queue_growth, 0.005);
}

TEST(Simulator, ZeroLoadProducesNothing) {
  const Fixture f;
  NetworkSimulator sim(f.graph, f.routing, f.pattern, FastConfig());
  const SimMetrics m = sim.Run(0.0);
  EXPECT_EQ(m.messages_generated, 0u);
  EXPECT_EQ(m.flits_delivered, 0u);
}

TEST(Simulator, LatencyAtLeastMessageLength) {
  // Tail delivery can't beat serialization: latency >= message length.
  const Fixture f;
  SimConfig config = FastConfig();
  NetworkSimulator sim(f.graph, f.routing, f.pattern, config);
  const SimMetrics m = sim.Run(0.05);
  ASSERT_GT(m.messages_delivered, 0u);
  EXPECT_GE(m.avg_latency_cycles, static_cast<double>(config.message_length_flits));
  EXPECT_GE(m.avg_total_latency_cycles, m.avg_latency_cycles);
}

TEST(Simulator, DeterministicForSameSeed) {
  const Fixture f;
  NetworkSimulator a(f.graph, f.routing, f.pattern, FastConfig());
  NetworkSimulator b(f.graph, f.routing, f.pattern, FastConfig());
  const SimMetrics ma = a.Run(0.2);
  const SimMetrics mb = b.Run(0.2);
  EXPECT_EQ(ma.messages_delivered, mb.messages_delivered);
  EXPECT_EQ(ma.flits_delivered, mb.flits_delivered);
  EXPECT_DOUBLE_EQ(ma.avg_latency_cycles, mb.avg_latency_cycles);
}

TEST(Simulator, RunIsRestartable) {
  const Fixture f;
  NetworkSimulator sim(f.graph, f.routing, f.pattern, FastConfig());
  const SimMetrics first = sim.Run(0.1);
  const SimMetrics again = sim.Run(0.1);
  EXPECT_EQ(first.messages_delivered, again.messages_delivered);
}

TEST(Simulator, SaturationCapsAcceptedTraffic) {
  const Fixture f;
  NetworkSimulator sim(f.graph, f.routing, f.pattern, FastConfig());
  const SimMetrics low = sim.Run(0.1);
  const SimMetrics high = sim.Run(1.5);
  EXPECT_GT(high.accepted_flits_per_switch_cycle, low.accepted_flits_per_switch_cycle);
  EXPECT_TRUE(high.Saturated());
  EXPECT_LT(high.accepted_flits_per_switch_cycle,
            0.9 * high.offered_flits_per_switch_cycle);
  EXPECT_GT(high.source_queue_growth, 0.0);
}

TEST(Simulator, LatencyGrowsWithLoad) {
  const Fixture f;
  NetworkSimulator sim(f.graph, f.routing, f.pattern, FastConfig());
  const double l1 = sim.Run(0.05).avg_latency_cycles;
  const double l2 = sim.Run(0.45).avg_latency_cycles;
  EXPECT_GT(l2, l1);
}

TEST(Simulator, UpDownNeverDeadlocks) {
  for (std::uint64_t seed : {2, 3}) {
    const Fixture f(seed);
    NetworkSimulator sim(f.graph, f.routing, f.pattern, FastConfig());
    EXPECT_FALSE(sim.Run(1.2).deadlock_detected) << "seed " << seed;
  }
}

TEST(Simulator, AdaptiveRoutingWorksAndHelpsOrMatches) {
  const Fixture f;
  SimConfig det = FastConfig();
  SimConfig adapt = FastConfig();
  adapt.adaptive_routing = true;
  NetworkSimulator sim_det(f.graph, f.routing, f.pattern, det);
  NetworkSimulator sim_adapt(f.graph, f.routing, f.pattern, adapt);
  const SimMetrics md = sim_det.Run(0.3);
  const SimMetrics ma = sim_adapt.Run(0.3);
  EXPECT_GT(ma.messages_delivered, 0u);
  EXPECT_FALSE(ma.deadlock_detected);
  // Adaptive routing should not collapse throughput.
  EXPECT_GT(ma.accepted_flits_per_switch_cycle,
            0.7 * md.accepted_flits_per_switch_cycle);
}

TEST(Simulator, WormholeDeadlockDetectedWithUnrestrictedRingRouting) {
  // Minimal adaptive routing on a ring deadlocks under wormhole with one
  // virtual channel once load is high enough; the watchdog must fire
  // rather than hang.
  const topo::SwitchGraph ring = topo::MakeRing(6, 4);
  const route::ShortestPathRouting routing(ring);
  // 2 apps of 12 processes = 3 switches each.
  const work::Workload workload = work::Workload::Uniform(2, 12);
  Rng rng(3);
  const auto mapping = work::ProcessMapping::RandomAligned(ring, workload, rng);
  const TrafficPattern pattern(ring, workload, mapping);
  SimConfig config;
  config.warmup_cycles = 4000;
  config.measure_cycles = 12000;
  config.deadlock_threshold_cycles = 1000;
  config.input_buffer_flits = 2;
  config.message_length_flits = 32;  // long messages hold many channels
  NetworkSimulator sim(ring, routing, pattern, config);
  const SimMetrics m = sim.Run(1.6);
  EXPECT_TRUE(m.deadlock_detected || m.Saturated());
}

TEST(Simulator, FlitConservationAtModerateLoad) {
  // Delivered flits are a multiple of nothing in general, but message
  // accounting must be consistent: delivered messages * length <= delivered
  // flits (+ partial tails outside the window).
  const Fixture f;
  SimConfig config = FastConfig();
  NetworkSimulator sim(f.graph, f.routing, f.pattern, config);
  const SimMetrics m = sim.Run(0.2);
  EXPECT_GE(m.flits_delivered + config.message_length_flits,
            m.messages_delivered * config.message_length_flits);
}

TEST(Simulator, InvalidConfigRejected) {
  const Fixture f;
  SimConfig config = FastConfig();
  config.message_length_flits = 0;
  EXPECT_THROW(NetworkSimulator sim(f.graph, f.routing, f.pattern, config),
               commsched::ContractError);
  config = FastConfig();
  config.input_buffer_flits = 0;
  EXPECT_THROW(NetworkSimulator sim(f.graph, f.routing, f.pattern, config),
               commsched::ContractError);
}

TEST(Simulator, ExcessiveLoadRejected) {
  const Fixture f;
  NetworkSimulator sim(f.graph, f.routing, f.pattern, FastConfig());
  // 16 switches * rate flits/cycle split over 64 hosts with 16-flit
  // messages: p = rate*16/(64*16) > 1 requires rate > 64.
  EXPECT_THROW((void)sim.Run(100.0), commsched::ContractError);
}

TEST(Simulator, LinkUtilizationBounded) {
  const Fixture f;
  NetworkSimulator sim(f.graph, f.routing, f.pattern, FastConfig());
  const SimMetrics m = sim.Run(0.4);
  EXPECT_GT(m.max_link_utilization, 0.0);
  EXPECT_LE(m.max_link_utilization, 1.0 + 1e-9);
  EXPECT_LE(m.avg_link_utilization, m.max_link_utilization);
}

}  // namespace
}  // namespace commsched::sim
