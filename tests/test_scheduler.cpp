#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include "routing/updown.h"
#include "topology/generator.h"

namespace commsched::sched {
namespace {

struct Fixture {
  topo::SwitchGraph graph;
  route::UpDownRouting routing;
  explicit Fixture(std::uint64_t seed = 1)
      : graph(topo::GenerateIrregularTopology({16, 4, 3, seed, 1000})), routing(graph) {}
};

TEST(Scheduler, BuildsTableFromRouting) {
  const Fixture f;
  const CommAwareScheduler scheduler(f.graph, f.routing);
  EXPECT_EQ(scheduler.distance_table().size(), 16u);
  EXPECT_GT(scheduler.distance_table()(0, 1), 0.0);
}

TEST(Scheduler, RejectsForeignRouting) {
  const Fixture f(1);
  const Fixture g(2);
  EXPECT_THROW(CommAwareScheduler scheduler(f.graph, g.routing), commsched::ContractError);
}

TEST(Scheduler, PrecomputedTableSizeChecked) {
  const Fixture f;
  EXPECT_THROW(CommAwareScheduler scheduler(f.graph, dist::DistanceTable(8, 1.0)),
               commsched::ContractError);
}

TEST(Scheduler, ScheduleProducesAlignedMappingWithGoodCc) {
  const Fixture f;
  const CommAwareScheduler scheduler(f.graph, f.routing);
  const work::Workload workload = work::Workload::Uniform(4, 16);
  const ScheduleOutcome outcome = scheduler.Schedule(workload);
  EXPECT_TRUE(outcome.mapping.IsSwitchAligned(f.graph));
  EXPECT_EQ(outcome.partition.cluster_count(), 4u);
  EXPECT_LT(outcome.fg, 1.0);
  EXPECT_GT(outcome.cc, 1.0);
  EXPECT_NEAR(outcome.cc, outcome.dg / outcome.fg, 1e-12);
  EXPECT_GT(outcome.search.iterations, 0u);
}

TEST(Scheduler, EvaluateScoresAnyAlignedMapping) {
  const Fixture f;
  const CommAwareScheduler scheduler(f.graph, f.routing);
  const work::Workload workload = work::Workload::Uniform(4, 16);
  Rng rng(5);
  const work::ProcessMapping random =
      work::ProcessMapping::RandomAligned(f.graph, workload, rng);
  const ScheduleOutcome outcome = scheduler.Evaluate(workload, random);
  EXPECT_GT(outcome.fg, 0.0);
  // The scheduled mapping must be at least as good as a random one.
  const ScheduleOutcome scheduled = scheduler.Schedule(workload);
  EXPECT_LE(scheduled.fg, outcome.fg + 1e-9);
}

TEST(Scheduler, WorkloadValidationPropagates) {
  const Fixture f;
  const CommAwareScheduler scheduler(f.graph, f.routing);
  EXPECT_THROW((void)scheduler.Schedule(work::Workload::Uniform(4, 8)), ConfigError);
}

TEST(Scheduler, UnevenApplicationsSupported) {
  const Fixture f;
  const CommAwareScheduler scheduler(f.graph, f.routing);
  const work::Workload workload({{"big", 32}, {"mid", 16}, {"small", 16}});
  const ScheduleOutcome outcome = scheduler.Schedule(workload);
  EXPECT_EQ(outcome.partition.ClusterSize(0), 8u);
  EXPECT_EQ(outcome.partition.ClusterSize(1), 4u);
  EXPECT_EQ(outcome.partition.ClusterSize(2), 4u);
}

}  // namespace
}  // namespace commsched::sched
