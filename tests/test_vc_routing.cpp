#include "simnet/vc_routing.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "routing/updown.h"
#include "topology/generator.h"
#include "topology/library.h"

namespace commsched::sim {
namespace {

using route::Phase;
using route::UpDownRouting;

TEST(SingleClassPolicy, DeterministicUsesOneLinkAllVcs) {
  const topo::SwitchGraph g = topo::MakeMesh2D(3, 3);
  const route::ShortestPathRouting routing(g);
  const SingleClassVcPolicy policy(routing, 3, /*adaptive=*/false);
  EXPECT_EQ(policy.vc_count(), 3u);
  // Corner to far corner offers 2 links; deterministic keeps the first only.
  const auto candidates = policy.Candidates(0, 8, Phase::kUp, false);
  ASSERT_EQ(candidates.size(), 3u);
  for (const VcCandidate& c : candidates) {
    EXPECT_EQ(c.link, candidates.front().link);
    EXPECT_FALSE(c.escape);
  }
  EXPECT_EQ(candidates[0].vc, 0u);
  EXPECT_EQ(candidates[2].vc, 2u);
}

TEST(SingleClassPolicy, AdaptiveUsesAllLinks) {
  const topo::SwitchGraph g = topo::MakeMesh2D(3, 3);
  const route::ShortestPathRouting routing(g);
  const SingleClassVcPolicy policy(routing, 2, /*adaptive=*/true);
  const auto candidates = policy.Candidates(0, 8, Phase::kUp, false);
  EXPECT_EQ(candidates.size(), 4u);  // 2 links x 2 VCs
}

TEST(SingleClassPolicy, EmptyAtDestination) {
  const topo::SwitchGraph g = topo::MakeMesh2D(2, 2);
  const route::ShortestPathRouting routing(g);
  const SingleClassVcPolicy policy(routing, 2, true);
  EXPECT_TRUE(policy.Candidates(1, 1, Phase::kUp, false).empty());
}

TEST(DuatoPolicy, RequiresTwoVcs) {
  const topo::SwitchGraph g = topo::MakeRing(6);
  EXPECT_THROW(DuatoFullyAdaptivePolicy policy(g, 1), commsched::ContractError);
}

TEST(DuatoPolicy, AdaptiveChannelsPreferredEscapeLast) {
  topo::IrregularTopologyOptions options;
  options.switch_count = 16;
  options.seed = 3;
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const DuatoFullyAdaptivePolicy policy(g, 2);
  for (topo::SwitchId s = 0; s < 16; ++s) {
    for (topo::SwitchId t = 0; t < 16; ++t) {
      if (s == t) continue;
      const auto candidates = policy.Candidates(s, t, Phase::kUp, false);
      ASSERT_FALSE(candidates.empty());
      // Prefix: adaptive (vc >= 1); suffix: escape (vc 0, up*/down*).
      bool seen_escape = false;
      std::size_t escape_count = 0;
      for (const VcCandidate& c : candidates) {
        if (c.escape) {
          seen_escape = true;
          ++escape_count;
          EXPECT_EQ(c.vc, 0u);
        } else {
          EXPECT_FALSE(seen_escape) << "adaptive candidate after an escape candidate";
          EXPECT_GE(c.vc, 1u);
        }
      }
      EXPECT_GE(escape_count, 1u) << "escape network must always be reachable";
    }
  }
}

TEST(DuatoPolicy, AdaptiveCandidatesAreMinimal) {
  topo::IrregularTopologyOptions options;
  options.switch_count = 12;
  options.seed = 9;
  const topo::SwitchGraph g = topo::GenerateIrregularTopology(options);
  const DuatoFullyAdaptivePolicy policy(g, 3);
  const auto hops = g.AllPairsHopDistance();
  for (topo::SwitchId s = 0; s < 12; ++s) {
    for (topo::SwitchId t = 0; t < 12; ++t) {
      if (s == t) continue;
      for (const VcCandidate& c : policy.Candidates(s, t, Phase::kUp, false)) {
        if (!c.escape) {
          EXPECT_EQ(hops[c.next][t] + 1, hops[s][t]) << "non-minimal adaptive hop";
        }
      }
    }
  }
}

TEST(DuatoPolicy, OnEscapeStaysOnEscape) {
  const topo::SwitchGraph g = topo::MakeFourRingsOfSix();
  const DuatoFullyAdaptivePolicy policy(g, 2);
  for (topo::SwitchId s = 0; s < 24; ++s) {
    for (topo::SwitchId t = 0; t < 24; ++t) {
      if (s == t) continue;
      const auto candidates = policy.Candidates(s, t, Phase::kUp, /*on_escape=*/true);
      ASSERT_EQ(candidates.size(), 1u);  // deterministic escape
      EXPECT_TRUE(candidates.front().escape);
      EXPECT_EQ(candidates.front().vc, 0u);
    }
  }
}

TEST(DuatoPolicy, EscapeFollowsUpDownPhases) {
  const topo::SwitchGraph g = topo::MakeFourRingsOfSix();
  const DuatoFullyAdaptivePolicy policy(g, 2);
  const UpDownRouting& escape = policy.escape_routing();
  // Walk any pair along the escape network and confirm phase legality.
  topo::SwitchId at = 3;
  const topo::SwitchId dest = 20;
  Phase phase = Phase::kUp;
  bool went_down = false;
  std::size_t steps = 0;
  while (at != dest) {
    const auto candidates = policy.Candidates(at, dest, phase, true);
    ASSERT_EQ(candidates.size(), 1u);
    const VcCandidate& c = candidates.front();
    const bool is_up = escape.IsUpTraversal(c.link, at);
    if (went_down) EXPECT_FALSE(is_up) << "up traversal after down on escape path";
    if (!is_up) went_down = true;
    at = c.next;
    phase = c.phase;
    ASSERT_LT(++steps, 50u);
  }
}

TEST(PolicyNames, AreDescriptive) {
  const topo::SwitchGraph g = topo::MakeRing(6);
  const UpDownRouting ud(g, topo::SwitchId{0});
  EXPECT_EQ(SingleClassVcPolicy(ud, 2, false).Name(), "up*/down*/deterministic/vc2");
  EXPECT_EQ(SingleClassVcPolicy(ud, 4, true).Name(), "up*/down*/adaptive/vc4");
  EXPECT_EQ(DuatoFullyAdaptivePolicy(g, 2).Name(), "duato-fully-adaptive");
}

}  // namespace
}  // namespace commsched::sim
