#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace commsched {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextIndexInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextIndex(bound), bound);
    }
  }
}

TEST(Rng, NextIndexZeroBoundThrows) {
  Rng rng(7);
  EXPECT_THROW((void)rng.NextIndex(0), ContractError);
}

TEST(Rng, NextIndexCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextIndex(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all of -2..2 appear
}

TEST(Rng, NextIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.NextInt(3, 2), ContractError);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // uniform mean
}

TEST(Rng, NextBoolRespectsEdgeProbabilities) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(Rng, NextBoolFrequencyMatchesP) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.Split();
  // Child should not replay the parent's stream.
  Rng parent2(5);
  (void)parent2();  // same advance as Split consumed
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == parent2()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitDeterministic) {
  Rng a(9);
  Rng b(9);
  Rng ca = a.Split();
  Rng cb = b.Split();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(ca(), cb());
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, PickFromEmptyThrows) {
  Rng rng(1);
  std::vector<int> empty;
  EXPECT_THROW((void)rng.Pick(empty), ContractError);
}

TEST(Rng, RandomPermutationCoversRange) {
  Rng rng(31);
  auto perm = RandomPermutation(10, rng);
  std::sort(perm.begin(), perm.end());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(perm[i], i);
  }
}

TEST(Rng, RandomPermutationNotIdentityUsually) {
  Rng rng(37);
  int identity_count = 0;
  for (int trial = 0; trial < 20; ++trial) {
    auto perm = RandomPermutation(12, rng);
    bool identity = true;
    for (std::size_t i = 0; i < perm.size(); ++i) {
      if (perm[i] != i) {
        identity = false;
        break;
      }
    }
    if (identity) ++identity_count;
  }
  EXPECT_EQ(identity_count, 0);
}

TEST(Rng, SplitMix64KnownGolden) {
  // Reference values from the splitmix64 reference implementation.
  std::uint64_t state = 0;
  const std::uint64_t v1 = SplitMix64(state);
  const std::uint64_t v2 = SplitMix64(state);
  EXPECT_NE(v1, v2);
  EXPECT_EQ(state, 2 * 0x9e3779b97f4a7c15ULL);
}

}  // namespace
}  // namespace commsched
