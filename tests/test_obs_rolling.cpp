// Rolling-window instruments (obs/rolling.h): deterministic bucket
// rotation driven by an injected clock, window/rate arithmetic, and — the
// part TSan must sign off on — concurrent writers against a live reader.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/rolling.h"

namespace commsched {
namespace {

using obs::RollingCounter;
using obs::RollingHistogram;
using obs::RollingRegistry;

constexpr std::uint64_t kBucket = 100;  // small fake-clock buckets

TEST(RollingCounterTest, CountsWithinOneBucket) {
  RollingCounter counter(kBucket);
  counter.Add(1, 10);
  counter.Add(2, 20);
  EXPECT_EQ(counter.WindowTotal(30), 3u);
}

TEST(RollingCounterTest, WindowCoversTenBuckets) {
  RollingCounter counter(kBucket);
  for (std::uint64_t epoch = 0; epoch < RollingCounter::kSlots; ++epoch) {
    counter.Add(1, epoch * kBucket + 1);
  }
  EXPECT_EQ(counter.WindowTotal(RollingCounter::kSlots * kBucket - 1), 10u);
}

TEST(RollingCounterTest, OldBucketsFallOutOfTheWindow) {
  RollingCounter counter(kBucket);
  for (std::uint64_t epoch = 0; epoch < RollingCounter::kSlots; ++epoch) {
    counter.Add(1, epoch * kBucket + 1);
  }
  // Epoch 10 recycles the slot that held epoch 0, so its sample is gone.
  counter.Add(0, RollingCounter::kSlots * kBucket + 1);
  EXPECT_EQ(counter.WindowTotal(RollingCounter::kSlots * kBucket + 1), 9u);
  // Jumping far ahead drops everything.
  EXPECT_EQ(counter.WindowTotal(100 * kBucket), 0u);
}

TEST(RollingCounterTest, SlotRecycledOnEpochWrap) {
  RollingCounter counter(kBucket);
  counter.Add(5, 50);  // epoch 0
  // Same slot index, ten epochs later: the old value must not leak in.
  counter.Add(1, RollingCounter::kSlots * kBucket + 50);
  EXPECT_EQ(counter.WindowTotal(RollingCounter::kSlots * kBucket + 60), 1u);
}

TEST(RollingCounterTest, RateUsesElapsedWindowSpan) {
  RollingCounter counter;  // 1 s buckets
  counter.Add(10, 500'000'000);  // 10 events in the first half second
  EXPECT_DOUBLE_EQ(counter.RatePerSecond(500'000'000), 20.0);
}

TEST(RollingCounterTest, RateOverFullWindow) {
  RollingCounter counter(kBucket);
  for (std::uint64_t epoch = 0; epoch < RollingCounter::kSlots; ++epoch) {
    counter.Add(1, epoch * kBucket);
  }
  // Window span at t=999: 9 full buckets + 99 ns of the current one.
  const double rate = counter.RatePerSecond(RollingCounter::kSlots * kBucket - 1);
  EXPECT_NEAR(rate, 10.0 * 1e9 / 999.0, 1e6);
}

TEST(RollingHistogramTest, MergesInWindowBuckets) {
  RollingHistogram hist(kBucket);
  hist.Record(10, 50);    // epoch 0
  hist.Record(100, 150);  // epoch 1
  const obs::HistogramSnapshot snap = hist.WindowSnapshot(200);
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum, 110u);
  EXPECT_EQ(snap.min, 10u);
  EXPECT_EQ(snap.max, 100u);
}

TEST(RollingHistogramTest, ExpiredBucketsAreExcluded) {
  RollingHistogram hist(kBucket);
  hist.Record(10, 50);  // epoch 0
  const std::uint64_t later = (RollingHistogram::kSlots + 5) * kBucket;
  hist.Record(7, later);
  const obs::HistogramSnapshot snap = hist.WindowSnapshot(later);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.max, 7u);
}

TEST(RollingHistogramTest, EmptyWindowIsZeroed) {
  RollingHistogram hist(kBucket);
  const obs::HistogramSnapshot snap = hist.WindowSnapshot(12345);
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.Percentile(0.99), 0.0);
}

TEST(RollingRegistryTest, LookupCreatesAndReusesSlots) {
  RollingRegistry registry;
  RollingCounter& counter = registry.GetCounter("svc.requests");
  EXPECT_EQ(&registry.GetCounter("svc.requests"), &counter);
  counter.Add(4, 100);
  const auto rates = registry.CounterRates(100);
  EXPECT_EQ(rates.size(), 1u);
  EXPECT_GT(rates.at("svc.requests"), 0.0);

  registry.GetHistogram("svc.latency_ns").Record(1000, 100);
  const auto windows = registry.HistogramWindows(100);
  EXPECT_EQ(windows.at("svc.latency_ns").count, 1u);
}

// Concurrency: writers on pool threads against a live reader. Bucket span
// is one minute, so every sample lands in the current epoch and the window
// total must be exact once writers join — while TSan watches the interim.
TEST(RollingConcurrencyTest, CounterTotalsExactUnderContention) {
  constexpr std::uint64_t kMinute = 60'000'000'000ull;
  RollingCounter counter(kMinute);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)counter.WindowTotal(obs::NowNanos());
      (void)counter.RatePerSecond(obs::NowNanos());
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(counter.WindowTotal(obs::NowNanos()),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(RollingConcurrencyTest, HistogramCountsExactUnderContention) {
  constexpr std::uint64_t kMinute = 60'000'000'000ull;
  RollingHistogram hist(kMinute);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)hist.WindowSnapshot(obs::NowNanos()).Percentile(0.99);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<std::uint64_t>(t) * 1000 + 1);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  const obs::HistogramSnapshot snap = hist.WindowSnapshot(obs::NowNanos());
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(RollingConcurrencyTest, RegistryLookupsRaceSafely) {
  RollingRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 2000; ++i) {
        registry.GetCounter("shared").Add(1);
        registry.GetHistogram("shared.hist").Record(static_cast<std::uint64_t>(i));
      }
    });
  }
  std::thread reader([&registry] {
    for (int i = 0; i < 200; ++i) {
      (void)registry.CounterRates(obs::NowNanos());
      (void)registry.HistogramWindows(obs::NowNanos());
    }
  });
  for (std::thread& t : threads) t.join();
  reader.join();
  EXPECT_EQ(registry.GetCounter("shared").WindowTotal(obs::NowNanos()), 8000u);
}

}  // namespace
}  // namespace commsched
