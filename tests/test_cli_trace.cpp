// End-to-end observability acceptance test: drives the installed
// commsched_cli binary (path injected by CMake as COMMSCHED_CLI_PATH) and
// validates that --trace produces parseable JSONL and --metrics dumps the
// registry with the swap-evaluation and tabu-hit counters populated.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "jsonl_test_util.h"

namespace commsched {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> NonEmptyLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Runs the CLI with `args`, stdout redirected to `stdout_path`.
int RunCli(const std::string& args, const std::string& stdout_path) {
  const std::string command =
      std::string(COMMSCHED_CLI_PATH) + " " + args + " > " + stdout_path;
  return std::system(command.c_str());
}

/// Every line of a trace file must parse as a JSON object with seq + type;
/// returns the set of event types seen.
std::set<std::string> ValidateTrace(const std::string& trace_path) {
  const std::vector<std::string> lines = NonEmptyLines(ReadFile(trace_path));
  EXPECT_FALSE(lines.empty()) << "empty trace " << trace_path;
  std::set<std::string> types;
  for (std::size_t k = 0; k < lines.size(); ++k) {
    const auto fields = testutil::ParseJsonObject(lines[k]);
    if (!fields.has_value()) {
      ADD_FAILURE() << "unparseable trace line: " << lines[k];
      continue;
    }
    EXPECT_EQ(testutil::JsonUint(*fields, "seq", lines.size()), k) << lines[k];
    const std::string type = testutil::JsonString(*fields, "type");
    EXPECT_NE(type, "") << lines[k];
    types.insert(type);
  }
  return types;
}

/// The --metrics dump is the last stdout line; parse its counters object.
std::map<std::string, std::string> MetricsCounters(const std::string& stdout_path) {
  const std::vector<std::string> lines = NonEmptyLines(ReadFile(stdout_path));
  if (lines.empty() || lines.back().front() != '{') {
    ADD_FAILURE() << "no metrics line in " << stdout_path;
    return {};
  }
  const auto fields = testutil::ParseJsonObject(lines.back());
  if (!fields.has_value()) {
    ADD_FAILURE() << "unparseable metrics line: " << lines.back();
    return {};
  }
  const auto counters = testutil::ParseJsonObject(testutil::JsonRaw(*fields, "counters"));
  if (!counters.has_value()) {
    ADD_FAILURE() << "metrics line has no counters object: " << lines.back();
    return {};
  }
  return *counters;
}

// The ISSUE acceptance scenario: schedule on a 16-switch random topology
// with --trace and --metrics; the trace parses line-by-line and the metrics
// dump carries swap-evaluation and tabu-hit counters.
TEST(CliTrace, ScheduleEmitsTraceAndMetrics) {
  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "cli_sched_trace.jsonl";
  const std::string stdout_path = dir + "cli_sched_stdout.txt";
  ASSERT_EQ(RunCli("schedule --kind random --switches 16 --apps 4 --seeds 3 --trace " +
                       trace_path + " --metrics",
                   stdout_path),
            0);

  const std::set<std::string> types = ValidateTrace(trace_path);
  EXPECT_TRUE(types.count("search.restart")) << "no restart events";
  EXPECT_TRUE(types.count("search.move")) << "no move events";
  EXPECT_TRUE(types.count("search.done")) << "no done event";

  const auto counters = MetricsCounters(stdout_path);
  EXPECT_GT(testutil::JsonUint(counters, "search.tabu.evaluations"), 0u);
  EXPECT_TRUE(counters.count("search.tabu.tabu_hits")) << "tabu-hit counter missing";
  EXPECT_EQ(testutil::JsonUint(counters, "search.tabu.seeds"), 3u);
}

// A short simulate run: the trace carries simulator and sweep lifecycle
// events and the metrics dump has flit/cycle counters.
TEST(CliTrace, SimulateEmitsSimAndSweepEvents) {
  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "cli_sim_trace.jsonl";
  const std::string stdout_path = dir + "cli_sim_stdout.txt";
  ASSERT_EQ(RunCli("simulate --kind random --switches 8 --apps 2 --mapping blocked "
                   "--points 2 --min-rate 0.1 --max-rate 0.2 --warmup 200 --measure 400 "
                   "--trace " +
                       trace_path + " --metrics",
                   stdout_path),
            0);

  const std::set<std::string> types = ValidateTrace(trace_path);
  EXPECT_TRUE(types.count("sim.start"));
  EXPECT_TRUE(types.count("sim.done"));
  EXPECT_TRUE(types.count("sweep.point"));
  EXPECT_TRUE(types.count("sweep.done"));

  const auto counters = MetricsCounters(stdout_path);
  EXPECT_EQ(testutil::JsonUint(counters, "sim.runs"), 2u);
  EXPECT_GT(testutil::JsonUint(counters, "sim.flits_delivered"), 0u);
  EXPECT_GT(testutil::JsonUint(counters, "sim.cycles"), 0u);
}

// The full observability round-trip on the ISSUE acceptance scenario: a
// seeded 16-switch simulate run producing a JSONL trace + metrics dump +
// Chrome trace, then `report` consuming the first two. The report must show
// packet-latency percentiles, the hottest-links table and per-seed F_G/C_c;
// the Chrome trace must be a valid array of complete events.
TEST(CliTrace, ReportRoundTrip) {
  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "cli_report_trace.jsonl";
  const std::string metrics_path = dir + "cli_report_metrics.json";
  const std::string chrome_path = dir + "cli_report_chrome.json";
  const std::string csv_path = dir + "cli_report_sweep.csv";
  const std::string stdout_path = dir + "cli_report_stdout.txt";
  ASSERT_EQ(RunCli("simulate --kind random --switches 16 --apps 4 --mapping op "
                   "--points 3 --min-rate 0.1 --max-rate 0.6 --warmup 500 --measure 2000 "
                   "--telemetry 500 --trace " +
                       trace_path + " --metrics-out " + metrics_path + " --chrome-trace " +
                       chrome_path,
                   stdout_path),
            0);

  // The trace carries the deep-telemetry samples; the metrics dump exists.
  const std::set<std::string> types = ValidateTrace(trace_path);
  EXPECT_TRUE(types.count("net.sample")) << "no telemetry samples";
  EXPECT_TRUE(types.count("search.seed_done"));
  ASSERT_FALSE(ReadFile(metrics_path).empty());

  // The Chrome trace is a JSON array of complete ("ph":"X") events covering
  // the search seeds and the simulator phases.
  const std::vector<std::string> chrome_lines = NonEmptyLines(ReadFile(chrome_path));
  ASSERT_GE(chrome_lines.size(), 3u);
  EXPECT_EQ(chrome_lines.front(), "[");
  EXPECT_EQ(chrome_lines.back(), "]");
  std::set<std::string> span_names;
  for (std::size_t k = 1; k + 1 < chrome_lines.size(); ++k) {
    std::string line = chrome_lines[k];
    if (line.back() == ',') line.pop_back();
    const auto event = testutil::ParseJsonObject(line);
    ASSERT_TRUE(event.has_value()) << line;
    EXPECT_EQ(testutil::JsonString(*event, "ph"), "X") << line;
    span_names.insert(testutil::JsonString(*event, "name"));
  }
  EXPECT_TRUE(span_names.count("tabu.seed"));
  EXPECT_TRUE(span_names.count("sim.warmup"));
  EXPECT_TRUE(span_names.count("sim.measure"));
  EXPECT_TRUE(span_names.count("sweep.point"));

  // `report` renders the percentiles, the link table, per-seed C_c and the
  // sweep CSV.
  const std::string report_stdout = dir + "cli_report_report.txt";
  ASSERT_EQ(RunCli("report --trace " + trace_path + " --metrics-file " + metrics_path +
                       " --csv " + csv_path + " --top 5",
                   report_stdout),
            0);
  const std::string text = ReadFile(report_stdout);
  EXPECT_NE(text.find("Packet latency"), std::string::npos);
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p90="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
  EXPECT_NE(text.find("hottest links"), std::string::npos);
  EXPECT_NE(text.find("Search convergence"), std::string::npos);
  EXPECT_NE(text.find("C_c"), std::string::npos);
  EXPECT_NE(text.find("net.sample telemetry events:"), std::string::npos);

  const std::vector<std::string> csv_lines = NonEmptyLines(ReadFile(csv_path));
  ASSERT_EQ(csv_lines.size(), 4u);  // header + 3 sweep points
  EXPECT_EQ(csv_lines[0], "offered,accepted,avg_latency,saturated");
}

// --metrics without --trace still works (counters only, no tracer).
TEST(CliTrace, MetricsWithoutTrace) {
  const std::string dir = ::testing::TempDir();
  const std::string stdout_path = dir + "cli_metrics_stdout.txt";
  ASSERT_EQ(RunCli("schedule --kind random --switches 8 --apps 2 --seeds 2 --metrics",
                   stdout_path),
            0);
  const auto counters = MetricsCounters(stdout_path);
  EXPECT_GT(testutil::JsonUint(counters, "search.tabu.evaluations"), 0u);
}

}  // namespace
}  // namespace commsched
