// Anchored repair scheduling (ISSUE 3 tentpole part 3): forced migration of
// processes off lost hardware, then budget-bounded swap refinement anchored
// at the current mapping.
#include "sched/repair.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "distance/distance_table.h"
#include "quality/quality.h"
#include "routing/updown.h"
#include "topology/library.h"

namespace commsched::sched {
namespace {

struct Fixture {
  topo::SwitchGraph graph;
  route::UpDownRouting routing;
  dist::DistanceTable table;

  Fixture()
      : graph(topo::MakeFourRingsOfSix()),
        routing(graph),
        table(dist::DistanceTable::Build(routing)) {}
};

TEST(Repair, ForcedDraftingFillsDeficitsFromSpare) {
  Fixture f;
  // Clusters 0/1 lost switches (deficit 2 and 1); cluster 2 is the free
  // pool holding everything else.
  const qual::Partition anchor = qual::Partition::Blocked({4, 4, 16});
  const RepairOptions options{.migration_budget = 0};  // isolate phase 1
  const RepairOutcome outcome = AnchoredRepair(f.table, anchor, {2, 1, 0}, 2, options);
  EXPECT_EQ(outcome.forced_moves, 3u);
  EXPECT_EQ(outcome.refinement_swaps, 0u);
  EXPECT_EQ(outcome.repaired.ClusterSize(0), 6u);
  EXPECT_EQ(outcome.repaired.ClusterSize(1), 5u);
  EXPECT_EQ(outcome.repaired.ClusterSize(2), 13u);
  // Drafting is greedy-minimal: every drafted switch really came out of the
  // spare pool (clusters 0/1 kept their original members).
  for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(outcome.repaired.ClusterOf(s), 0u);
  for (std::size_t s = 4; s < 8; ++s) EXPECT_EQ(outcome.repaired.ClusterOf(s), 1u);
}

TEST(Repair, DraftingStopsWhenPoolRunsDry) {
  Fixture f;
  const qual::Partition anchor = qual::Partition::Blocked({10, 12, 2});
  const RepairOptions options{.migration_budget = 0};
  const RepairOutcome outcome = AnchoredRepair(f.table, anchor, {5, 0, 0}, 2, options);
  // A cluster can never be emptied, so only 1 of the 2 spares is draftable.
  EXPECT_EQ(outcome.forced_moves, 1u);
  EXPECT_EQ(outcome.repaired.ClusterSize(0), 11u);
  EXPECT_EQ(outcome.repaired.ClusterSize(2), 1u);
}

TEST(Repair, RefinementImprovesFgWithoutExceedingBudget) {
  Fixture f;
  Rng rng(7);
  const qual::Partition anchor = qual::Partition::Random({6, 6, 6, 6}, rng);
  RepairOptions options;
  options.migration_budget = 6;
  const RepairOutcome outcome = AnchoredRepair(f.table, anchor, {}, std::nullopt, options);
  EXPECT_LE(outcome.repaired_fg, outcome.anchor_fg + 1e-9);
  EXPECT_LE(outcome.displaced, 6u);
  // displaced counts switches whose cluster differs from the anchor.
  std::size_t moved = 0;
  for (std::size_t s = 0; s < 24; ++s) {
    if (outcome.repaired.ClusterOf(s) != anchor.ClusterOf(s)) ++moved;
  }
  EXPECT_EQ(moved, outcome.displaced);
  EXPECT_DOUBLE_EQ(outcome.repaired_fg, qual::GlobalSimilarity(f.table, outcome.repaired));
}

TEST(Repair, ZeroBudgetFreezesTheAnchor) {
  Fixture f;
  Rng rng(11);
  const qual::Partition anchor = qual::Partition::Random({6, 6, 6, 6}, rng);
  const RepairOptions options{.migration_budget = 0};
  const RepairOutcome outcome = AnchoredRepair(f.table, anchor, {}, std::nullopt, options);
  EXPECT_EQ(outcome.refinement_swaps, 0u);
  EXPECT_EQ(outcome.displaced, 0u);
  for (std::size_t s = 0; s < 24; ++s) {
    EXPECT_EQ(outcome.repaired.ClusterOf(s), anchor.ClusterOf(s));
  }
}

TEST(Repair, MigrationPenaltySuppressesMarginalSwaps) {
  Fixture f;
  Rng rng(7);
  const qual::Partition anchor = qual::Partition::Random({6, 6, 6, 6}, rng);
  RepairOptions cheap;
  cheap.migration_penalty = 0.0;
  RepairOptions expensive;
  expensive.migration_penalty = 1e6;  // any displacement is prohibitive
  const RepairOutcome free_moves = AnchoredRepair(f.table, anchor, {}, std::nullopt, cheap);
  const RepairOutcome costly = AnchoredRepair(f.table, anchor, {}, std::nullopt, expensive);
  EXPECT_GT(free_moves.refinement_swaps, 0u);  // random start leaves easy gains
  EXPECT_EQ(costly.refinement_swaps, 0u);
  EXPECT_GE(free_moves.displaced, costly.displaced);
}

TEST(Repair, DeficitVectorMustMatchClusterCount) {
  Fixture f;
  const qual::Partition anchor = qual::Partition::Blocked({12, 12});
  EXPECT_THROW((void)AnchoredRepair(f.table, anchor, {1, 0, 0}, 0), ContractError);
  EXPECT_THROW((void)AnchoredRepair(f.table, anchor, {1, 0}, 5), ContractError);  // spare range
}

}  // namespace
}  // namespace commsched::sched
