// The obs layer: counters/timers/Registry semantics, JSONL tracer output,
// and — the part that must not be taken on faith — exact totals when the
// primitives are hammered from ThreadPool workers concurrently.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "jsonl_test_util.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace commsched {
namespace {

using obs::Counter;
using obs::Registry;
using obs::TimerSnapshot;
using obs::TraceEvent;
using obs::Tracer;

TEST(Counter, AddAndReset) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Timer, RecordsTotalsAndCount) {
  obs::Timer timer;
  timer.RecordNanos(100);
  timer.RecordNanos(250);
  EXPECT_EQ(timer.total_ns(), 350u);
  EXPECT_EQ(timer.count(), 2u);
}

TEST(ScopedTimer, RecordsOneSample) {
  obs::Timer timer;
  { const obs::ScopedTimer scope(timer); }
  EXPECT_EQ(timer.count(), 1u);
}

TEST(RegistryTest, LookupCreatesAndReusesSlots) {
  Registry registry;
  Counter& a = registry.GetCounter("a");
  a.Add(3);
  EXPECT_EQ(&registry.GetCounter("a"), &a);
  EXPECT_EQ(registry.CounterValues().at("a"), 3u);
  registry.ResetAll();
  EXPECT_EQ(registry.CounterValues().at("a"), 0u);
}

TEST(RegistryTest, ToJsonIsParseable) {
  Registry registry;
  registry.GetCounter("x.count").Add(7);
  registry.GetTimer("x.time").RecordNanos(123);
  const auto fields = testutil::ParseJsonObject(registry.ToJson());
  ASSERT_TRUE(fields.has_value());
  const auto counters = testutil::ParseJsonObject(testutil::JsonRaw(*fields, "counters"));
  ASSERT_TRUE(counters.has_value());
  EXPECT_EQ(testutil::JsonUint(*counters, "x.count"), 7u);
  const auto timers = testutil::ParseJsonObject(testutil::JsonRaw(*fields, "timers"));
  ASSERT_TRUE(timers.has_value());
  const auto x_time = testutil::ParseJsonObject(testutil::JsonRaw(*timers, "x.time"));
  ASSERT_TRUE(x_time.has_value());
  EXPECT_EQ(testutil::JsonUint(*x_time, "total_ns"), 123u);
  EXPECT_EQ(testutil::JsonUint(*x_time, "count"), 1u);
}

// The satellite concurrency requirement: pool workers increment shared
// counters (racing on first-touch registration too) and every increment
// must land — no lost updates.
TEST(RegistryTest, ConcurrentCountersAreExact) {
  Registry registry;
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kIncrementsPerTask = 10000;
  ThreadPool pool(8);
  for (std::size_t t = 0; t < kTasks; ++t) {
    pool.Submit([&registry, t] {
      // Resolve through the registry every time for half the tasks (lookup
      // contention) and once for the other half (the hot-loop idiom).
      if (t % 2 == 0) {
        for (std::size_t i = 0; i < kIncrementsPerTask; ++i) {
          registry.GetCounter("shared").Add();
        }
      } else {
        Counter& shared = registry.GetCounter("shared");
        Counter& mine = registry.GetCounter("task." + std::to_string(t));
        for (std::size_t i = 0; i < kIncrementsPerTask; ++i) {
          shared.Add();
          mine.Add();
        }
      }
    });
  }
  pool.Wait();
  const auto values = registry.CounterValues();
  EXPECT_EQ(values.at("shared"), kTasks * kIncrementsPerTask);
  for (std::size_t t = 1; t < kTasks; t += 2) {
    EXPECT_EQ(values.at("task." + std::to_string(t)), kIncrementsPerTask);
  }
}

TEST(RegistryTest, ConcurrentTimersCountEverySample) {
  Registry registry;
  constexpr std::size_t kTasks = 32;
  constexpr std::size_t kSamplesPerTask = 2000;
  ThreadPool pool(8);
  for (std::size_t t = 0; t < kTasks; ++t) {
    pool.Submit([&registry] {
      obs::Timer& timer = registry.GetTimer("work");
      for (std::size_t i = 0; i < kSamplesPerTask; ++i) {
        timer.RecordNanos(3);
      }
    });
  }
  pool.Wait();
  const TimerSnapshot snapshot = registry.TimerValues().at("work");
  EXPECT_EQ(snapshot.count, kTasks * kSamplesPerTask);
  EXPECT_EQ(snapshot.total_ns, 3u * kTasks * kSamplesPerTask);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket b = bit width of the value: 0 -> bucket 0, [2^(b-1), 2^b - 1] -> b.
  EXPECT_EQ(obs::Histogram::BucketOf(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketOf(1), 1u);
  EXPECT_EQ(obs::Histogram::BucketOf(2), 2u);
  EXPECT_EQ(obs::Histogram::BucketOf(3), 2u);
  EXPECT_EQ(obs::Histogram::BucketOf(4), 3u);
  EXPECT_EQ(obs::Histogram::BucketOf((std::uint64_t{1} << 32) - 1), 32u);
  EXPECT_EQ(obs::Histogram::BucketOf(std::uint64_t{1} << 32), 33u);
  EXPECT_EQ(obs::Histogram::BucketOf(~std::uint64_t{0}), 64u);

  obs::Histogram histogram;
  histogram.Record(0);
  histogram.Record(1);
  histogram.Record(~std::uint64_t{0});
  const obs::HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[64], 1u);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, ~std::uint64_t{0});
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  const obs::HistogramSnapshot snap = obs::Histogram().Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.Percentile(0.5), 0.0);
  EXPECT_EQ(snap.Mean(), 0.0);
}

TEST(HistogramTest, SingleValueDistributionIsExact) {
  // Clamping to [min, max] makes every percentile of a constant exact.
  obs::Histogram histogram;
  histogram.Record(42, 1000);
  const obs::HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum, 42000u);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.99), 42.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), 42.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 42.0);
}

TEST(HistogramTest, PercentileAccuracyOnUniformData) {
  // 1..1000 recorded once each. Log2 bucketing bounds the error by the
  // holding bucket's range, so each estimate must land inside the bucket of
  // the true quantile and percentiles must be monotone in q.
  obs::Histogram histogram;
  for (std::uint64_t v = 1; v <= 1000; ++v) histogram.Record(v);
  const obs::HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, 1000u);
  const struct {
    double q;
    double truth;
  } cases[] = {{0.50, 500.5}, {0.90, 900.1}, {0.99, 990.01}};
  double previous = 0.0;
  for (const auto& c : cases) {
    const double estimate = snap.Percentile(c.q);
    const double bucket_lo =
        std::exp2(std::floor(std::log2(c.truth)));  // bucket holding `truth`
    EXPECT_GE(estimate, bucket_lo) << "q=" << c.q;
    EXPECT_LE(estimate, 2.0 * bucket_lo - 1.0 + 1e-9) << "q=" << c.q;
    EXPECT_LT(std::abs(estimate - c.truth) / c.truth, 1.0) << "q=" << c.q;
    EXPECT_GE(estimate, previous);
    previous = estimate;
  }
}

TEST(HistogramTest, ConcurrentRecordsAreExact) {
  obs::Registry registry;
  constexpr std::size_t kTasks = 32;
  constexpr std::size_t kSamplesPerTask = 5000;
  ThreadPool pool(8);
  for (std::size_t t = 0; t < kTasks; ++t) {
    pool.Submit([&registry, t] {
      obs::Histogram& histogram = registry.GetHistogram("latency");
      for (std::size_t i = 0; i < kSamplesPerTask; ++i) {
        histogram.Record(t * kSamplesPerTask + i);
      }
    });
  }
  pool.Wait();
  const obs::HistogramSnapshot snap = registry.HistogramValues().at("latency");
  constexpr std::uint64_t kTotal = kTasks * kSamplesPerTask;
  EXPECT_EQ(snap.count, kTotal);
  EXPECT_EQ(snap.sum, kTotal * (kTotal - 1) / 2);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, kTotal - 1);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t bucket : snap.buckets) bucket_total += bucket;
  EXPECT_EQ(bucket_total, kTotal);
}

TEST(RegistryTest, ResetAllClearsHistograms) {
  Registry registry;
  registry.GetHistogram("h").Record(7);
  registry.ResetAll();
  const obs::HistogramSnapshot snap = registry.HistogramValues().at("h");
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  // The slot survives the reset and keeps recording.
  registry.GetHistogram("h").Record(3);
  EXPECT_EQ(registry.HistogramValues().at("h").count, 1u);
}

TEST(RegistryTest, ToJsonIncludesHistogramPercentiles) {
  Registry registry;
  obs::Histogram& histogram = registry.GetHistogram("net.latency");
  histogram.Record(5, 100);
  const auto fields = testutil::ParseJsonObject(registry.ToJson());
  ASSERT_TRUE(fields.has_value());
  const auto histograms =
      testutil::ParseJsonObject(testutil::JsonRaw(*fields, "histograms"));
  ASSERT_TRUE(histograms.has_value());
  const auto latency =
      testutil::ParseJsonObject(testutil::JsonRaw(*histograms, "net.latency"));
  ASSERT_TRUE(latency.has_value());
  EXPECT_EQ(testutil::JsonUint(*latency, "count"), 100u);
  EXPECT_EQ(testutil::JsonUint(*latency, "sum"), 500u);
  EXPECT_EQ(testutil::JsonUint(*latency, "min"), 5u);
  EXPECT_EQ(testutil::JsonUint(*latency, "max"), 5u);
  EXPECT_EQ(testutil::JsonRaw(*latency, "p50"), "5");
  EXPECT_EQ(testutil::JsonRaw(*latency, "p99"), "5");
  const auto buckets =
      testutil::ParseJsonObject(testutil::JsonRaw(*latency, "buckets"));
  ASSERT_TRUE(buckets.has_value());
  EXPECT_EQ(testutil::JsonUint(*buckets, "3"), 100u);  // 5 has bit width 3
  EXPECT_EQ(buckets->size(), 1u);  // empty buckets are omitted
}

TEST(TracerTest, EmitsOneValidJsonObjectPerLine) {
  std::ostringstream out;
  Tracer tracer(out);
  tracer.Emit(TraceEvent("unit.test").F("n", 3).F("x", 1.5).F("ok", true).F("s", "a\"b"));
  tracer.Emit(TraceEvent("unit.test").F("n", 4));
  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    const auto fields = testutil::ParseJsonObject(line);
    ASSERT_TRUE(fields.has_value()) << line;
    EXPECT_EQ(testutil::JsonUint(*fields, "seq", 99), count);
    EXPECT_EQ(testutil::JsonString(*fields, "type"), "unit.test");
    ++count;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(tracer.emitted(), 2u);
  // The escaped string survives round-tripping.
  EXPECT_NE(out.str().find("\"s\":\"a\\\"b\""), std::string::npos);
}

TEST(TracerTest, DisabledByDefaultAndScopedInstall) {
  EXPECT_EQ(obs::ActiveTracer(), nullptr);
  std::ostringstream out;
  Tracer tracer(out);
  {
    const obs::ScopedTracer scope(tracer);
    EXPECT_EQ(obs::ActiveTracer(), &tracer);
  }
  EXPECT_EQ(obs::ActiveTracer(), nullptr);
}

TEST(TracerTest, NestedScopedTracersRestoreThePreviousOne) {
  std::ostringstream out_a;
  std::ostringstream out_b;
  Tracer outer(out_a);
  Tracer inner(out_b);
  {
    const obs::ScopedTracer outer_scope(outer);
    {
      const obs::ScopedTracer inner_scope(inner);
      EXPECT_EQ(obs::ActiveTracer(), &inner);
    }
    // The inner scope must restore the outer tracer, not uninstall tracing.
    EXPECT_EQ(obs::ActiveTracer(), &outer);
  }
  EXPECT_EQ(obs::ActiveTracer(), nullptr);
}

// Concurrent emitters: every event becomes exactly one intact line (no
// interleaving, no loss) and sequence numbers are a permutation of 0..N-1.
TEST(TracerTest, ConcurrentEmitsNeverInterleave) {
  std::ostringstream out;
  Tracer tracer(out);
  constexpr std::size_t kTasks = 16;
  constexpr std::size_t kEventsPerTask = 500;
  ThreadPool pool(8);
  for (std::size_t t = 0; t < kTasks; ++t) {
    pool.Submit([&tracer, t] {
      for (std::size_t i = 0; i < kEventsPerTask; ++i) {
        tracer.Emit(TraceEvent("concurrent").F("task", t).F("i", i));
      }
    });
  }
  pool.Wait();
  std::istringstream lines(out.str());
  std::string line;
  std::vector<bool> seen(kTasks * kEventsPerTask, false);
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    const auto fields = testutil::ParseJsonObject(line);
    ASSERT_TRUE(fields.has_value()) << line;
    const std::uint64_t seq = testutil::JsonUint(*fields, "seq", seen.size());
    ASSERT_LT(seq, seen.size());
    EXPECT_FALSE(seen[seq]);
    seen[seq] = true;
    ++count;
  }
  EXPECT_EQ(count, kTasks * kEventsPerTask);
}

}  // namespace
}  // namespace commsched
