#include "hetero/combined.h"

#include <gtest/gtest.h>

#include "distance/distance_table.h"
#include "routing/updown.h"
#include "topology/generator.h"
#include "topology/library.h"

namespace commsched::hetero {
namespace {

struct Fixture {
  topo::SwitchGraph graph;
  route::UpDownRouting routing;
  dist::DistanceTable table;

  Fixture() : graph(topo::MakeFourRingsOfSix()), routing(graph),
              table(dist::DistanceTable::Build(routing)) {}

  /// One ring of fast switches, the rest slow.
  [[nodiscard]] HeteroSystem System(double fast = 4.0, double slow = 1.0) const {
    HeteroSystem system;
    system.graph = &graph;
    system.table = &table;
    system.switch_speed.assign(24, slow);
    for (std::size_t s = 0; s < 6; ++s) system.switch_speed[s] = fast;
    return system;
  }

  /// Fast switches scattered across the rings (every 4th switch), so a
  /// speed-greedy grouping necessarily crosses ring boundaries while every
  /// ring has the same aggregate speed.
  [[nodiscard]] HeteroSystem AlternatingSystem(double fast = 8.0, double slow = 1.0) const {
    HeteroSystem system;
    system.graph = &graph;
    system.table = &table;
    system.switch_speed.assign(24, slow);
    for (std::size_t s = 0; s < 24; s += 4) system.switch_speed[s] = fast;
    return system;
  }
};

std::vector<ApplicationDemand> UniformApps(double compute, double comm) {
  return {{"a0", compute, comm, 6}, {"a1", compute, comm, 6},
          {"a2", compute, comm, 6}, {"a3", compute, comm, 6}};
}

TEST(Combined, EstimatesAreConsistent) {
  const Fixture f;
  const HeteroSystem system = f.System();
  const auto apps = UniformApps(10.0, 5.0);
  const qual::Partition rings({0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1,
                               2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3});
  const auto estimates = EstimateApps(system, apps, rings);
  ASSERT_EQ(estimates.size(), 4u);
  // App 0 sits on the fast ring: lowest compute time.
  EXPECT_LT(estimates[0].compute_time, estimates[1].compute_time);
  EXPECT_NEAR(estimates[0].compute_time, 10.0 / 24.0, 1e-12);
  EXPECT_NEAR(estimates[1].compute_time, 10.0 / 6.0, 1e-12);
  EXPECT_NEAR(EstimateMakespan(system, apps, rings),
              std::max(estimates[1].compute_time,
                       std::max({estimates[0].Time(), estimates[2].Time(),
                                 estimates[3].Time()})),
              1e-12);
}

TEST(Combined, SingleSwitchClustersHaveNoCommTime) {
  topo::SwitchGraph g = topo::MakeRing(4);
  const route::UpDownRouting routing(g, topo::SwitchId{0});
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);
  HeteroSystem system{&g, &table, {1.0, 1.0, 1.0, 1.0}};
  const std::vector<ApplicationDemand> apps = {
      {"x", 1.0, 100.0, 1}, {"y", 1.0, 100.0, 1}, {"z", 2.0, 100.0, 2}};
  const qual::Partition p({0, 1, 2, 2});
  const auto estimates = EstimateApps(system, apps, p);
  EXPECT_DOUBLE_EQ(estimates[0].comm_time, 0.0);
  EXPECT_DOUBLE_EQ(estimates[1].comm_time, 0.0);
  EXPECT_GT(estimates[2].comm_time, 0.0);
}

TEST(Combined, ValidationErrors) {
  const Fixture f;
  HeteroSystem system = f.System();
  auto apps = UniformApps(1.0, 1.0);
  apps[0].cluster_switches = 5;  // total 23 != 24
  EXPECT_THROW((void)ScheduleHetero(system, apps, HeteroStrategy::kCombined), ContractError);
  system.switch_speed[3] = 0.0;
  EXPECT_THROW((void)ScheduleHetero(f.System(), {}, HeteroStrategy::kCombined), ContractError);
}

TEST(Combined, CommOnlyWinsWhenCommBound) {
  const Fixture f;
  // Speed-greedy grouping scatters clusters across rings here, so ignoring
  // communication is strictly costly for a communication-bound workload.
  const HeteroSystem system = f.AlternatingSystem();
  const auto apps = UniformApps(0.1, 50.0);  // communication dominates
  const HeteroOutcome comm =
      ScheduleHetero(system, apps, HeteroStrategy::kCommunicationOnly);
  const HeteroOutcome compute = ScheduleHetero(system, apps, HeteroStrategy::kComputeOnly);
  EXPECT_LT(comm.makespan, compute.makespan);
  for (const AppEstimate& e : comm.per_app) {
    EXPECT_TRUE(e.CommBound());
  }
}

TEST(Combined, ComputeOnlyWinsWhenComputeBound) {
  const Fixture f;
  // Every ring has the same aggregate speed, so a ring-aligned (comm-only)
  // placement cannot give the heavy application extra compute; gathering
  // the scattered fast switches can.
  const HeteroSystem system = f.AlternatingSystem();
  // Heavily skewed compute demands, negligible communication.
  const std::vector<ApplicationDemand> apps = {{"heavy", 100.0, 0.01, 6},
                                               {"l1", 1.0, 0.01, 6},
                                               {"l2", 1.0, 0.01, 6},
                                               {"l3", 1.0, 0.01, 6}};
  const HeteroOutcome compute = ScheduleHetero(system, apps, HeteroStrategy::kComputeOnly);
  const HeteroOutcome comm =
      ScheduleHetero(system, apps, HeteroStrategy::kCommunicationOnly);
  EXPECT_LT(compute.makespan, comm.makespan);
}

TEST(Combined, CombinedNeverWorseThanEitherSingleObjective) {
  const Fixture f;
  const HeteroSystem system = f.System();
  for (const auto& [compute, comm] : std::vector<std::pair<double, double>>{
           {0.1, 50.0}, {100.0, 0.01}, {20.0, 10.0}, {5.0, 5.0}}) {
    const auto apps = UniformApps(compute, comm);
    const double combined =
        ScheduleHetero(system, apps, HeteroStrategy::kCombined).makespan;
    const double compute_only =
        ScheduleHetero(system, apps, HeteroStrategy::kComputeOnly).makespan;
    const double comm_only =
        ScheduleHetero(system, apps, HeteroStrategy::kCommunicationOnly).makespan;
    EXPECT_LE(combined, compute_only + 1e-9) << compute << "/" << comm;
    EXPECT_LE(combined, comm_only + 1e-9) << compute << "/" << comm;
  }
}

TEST(Combined, OutcomeClusterSizesMatchDemands) {
  const Fixture f;
  const HeteroSystem system = f.System();
  const std::vector<ApplicationDemand> apps = {
      {"big", 10.0, 10.0, 12}, {"mid", 5.0, 5.0, 8}, {"small", 1.0, 1.0, 4}};
  const HeteroOutcome outcome = ScheduleHetero(system, apps, HeteroStrategy::kCombined);
  EXPECT_EQ(outcome.partition.ClusterSize(0), 12u);
  EXPECT_EQ(outcome.partition.ClusterSize(1), 8u);
  EXPECT_EQ(outcome.partition.ClusterSize(2), 4u);
}

TEST(Combined, Deterministic) {
  const Fixture f;
  const HeteroSystem system = f.System();
  const auto apps = UniformApps(5.0, 5.0);
  HeteroOptions options;
  options.rng_seed = 9;
  const HeteroOutcome a = ScheduleHetero(system, apps, HeteroStrategy::kCombined, options);
  const HeteroOutcome b = ScheduleHetero(system, apps, HeteroStrategy::kCombined, options);
  EXPECT_EQ(a.partition, b.partition);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(Combined, StrategyNames) {
  EXPECT_EQ(ToString(HeteroStrategy::kComputeOnly), "compute-only");
  EXPECT_EQ(ToString(HeteroStrategy::kCommunicationOnly), "communication-only");
  EXPECT_EQ(ToString(HeteroStrategy::kCombined), "combined");
}

}  // namespace
}  // namespace commsched::hetero
