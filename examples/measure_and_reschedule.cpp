// Measure-and-reschedule: the closed loop the paper sketches as future work.
//
//   1. Place four applications blindly (all assumed equal).
//   2. Run the machine; the traffic monitor measures per-switch-pair flits.
//   3. Estimate each application's communication intensity from the matrix.
//   4. Re-place with the intensity-weighted Tabu search: the hottest
//      application gets the densest network region.
//   5. Verify the gain in simulation.
//
// Uses the designed mixed-density network (one K4 region, three sparse
// paths), where placement of the hot application genuinely matters.
#include <iostream>

#include "core/commsched.h"

int main() {
  using namespace commsched;

  const topo::SwitchGraph network = topo::MakeMixedDensity16();
  const route::UpDownRouting routing(network);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);

  // Ground truth the scheduler does NOT know: app "render" is 8x hotter.
  std::vector<work::ApplicationSpec> apps = work::Workload::Uniform(4, 16).applications();
  apps[0].name = "render";
  apps[0].traffic_weight = 8.0;
  apps[1].name = "ocean";
  apps[2].name = "chem";
  apps[3].name = "web";
  const work::Workload workload(apps);

  // --- 1. blind placement -------------------------------------------------
  const sched::SearchResult blind = sched::TabuSearch(table, {4, 4, 4, 4});
  const auto blind_mapping = work::ProcessMapping::FromPartition(network, workload, blind.best);
  std::cout << "blind placement:\n";
  for (std::size_t a = 0; a < 4; ++a) {
    std::cout << "  " << workload.applications()[a].name << " -> ("
              << Join(blind.best.Members(a), ",") << ")\n";
  }

  // --- 2./3. run, monitor, estimate ---------------------------------------
  const sim::TrafficPattern blind_traffic(network, workload, blind_mapping);
  sim::SimConfig monitor_config;
  monitor_config.warmup_cycles = 2000;
  monitor_config.measure_cycles = 15000;
  monitor_config.collect_traffic_matrix = true;
  sim::NetworkSimulator monitor(network, routing, blind_traffic, monitor_config);
  const sim::SimMetrics observed = monitor.Run(0.2);
  const std::vector<double> intensity =
      sim::EstimateAppIntensities(observed.switch_pair_flit_rate, blind.best);
  std::cout << "\nmeasured intensities (normalized):\n";
  for (std::size_t a = 0; a < 4; ++a) {
    std::cout << "  " << workload.applications()[a].name << ": " << intensity[a] << "\n";
  }

  // --- 4. weighted re-placement -------------------------------------------
  const sched::SearchResult informed =
      sched::IntensityTabuSearch(table, {4, 4, 4, 4}, intensity);
  std::cout << "\ninformed placement:\n";
  for (std::size_t a = 0; a < 4; ++a) {
    std::cout << "  " << workload.applications()[a].name << " -> ("
              << Join(informed.best.Members(a), ",") << ")\n";
  }

  // --- 5. verify -----------------------------------------------------------
  const auto informed_mapping =
      work::ProcessMapping::FromPartition(network, workload, informed.best);
  const sim::TrafficPattern informed_traffic(network, workload, informed_mapping);
  sim::SimConfig config;
  config.warmup_cycles = 3000;
  config.measure_cycles = 10000;
  const double load = 0.6;
  sim::NetworkSimulator sim_blind(network, routing, blind_traffic, config);
  sim::NetworkSimulator sim_informed(network, routing, informed_traffic, config);
  const sim::SimMetrics m_blind = sim_blind.Run(load);
  const sim::SimMetrics m_informed = sim_informed.Run(load);

  std::cout << "\nat offered load " << load << " flits/switch/cycle:\n";
  std::cout << "  blind:    accepted " << m_blind.accepted_flits_per_switch_cycle
            << ", render latency " << m_blind.per_app[0].avg_latency_cycles << " cycles\n";
  std::cout << "  informed: accepted " << m_informed.accepted_flits_per_switch_cycle
            << ", render latency " << m_informed.per_app[0].avg_latency_cycles
            << " cycles\n";
  return 0;
}
