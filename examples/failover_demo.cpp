// Failover demo: a NOW loses two links and a switch mid-run, the network
// reconfigures its up*/down* routing on the surviving component, and the
// anchored repair scheduler migrates the stranded processes while keeping
// most of the original mapping in place.
//
//   ./examples/failover_demo [seed]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/commsched.h"

int main(int argc, char** argv) {
  using namespace commsched;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  // 1. The usual 16-switch irregular network with a scheduled 4x4 workload.
  topo::IrregularTopologyOptions topo_options;
  topo_options.switch_count = 16;
  topo_options.seed = seed;
  const topo::SwitchGraph network = topo::GenerateIrregularTopology(topo_options);
  const route::UpDownRouting routing(network);
  const work::Workload workload = work::Workload::Uniform(4, network.host_count() / 4);
  const sched::CommAwareScheduler scheduler(network, routing);
  const sched::ScheduleOutcome scheduled = scheduler.Schedule(workload);
  std::cout << "Healthy network: " << network.switch_count() << " switches, "
            << network.link_count() << " links\n";
  std::cout << "Scheduled partition: " << scheduled.partition.ToString() << "\n";
  std::cout << "Pre-fault C_c = " << scheduled.cc << "\n";

  // 2. A fault plan: two link failures, then a switch failure, chosen so a
  //    large component survives. The same JSON works with
  //    `commsched_cli simulate --fault-plan`.
  topo::Link first{};
  topo::Link second{};
  topo::SwitchId dead = 0;
  [&] {
    for (topo::LinkId l1 = 0; l1 < network.link_count(); ++l1) {
      for (topo::LinkId l2 = l1 + 1; l2 < network.link_count(); ++l2) {
        for (topo::SwitchId s = 0; s < network.switch_count(); ++s) {
          const topo::Link& a = network.link(l1);
          const topo::Link& b = network.link(l2);
          if (s == a.a || s == a.b || s == b.a || s == b.b) continue;
          faults::DegradedView probe(network);
          probe.FailLink(a.a, a.b);
          probe.FailLink(b.a, b.b);
          probe.FailSwitch(s);
          if (probe.LargestAliveComponent().size() + 3 >= network.switch_count()) {
            first = a;
            second = b;
            dead = s;
            return;
          }
        }
      }
    }
  }();
  const faults::FaultPlan plan = faults::FaultPlan::FromEvents({
      {4000, faults::FaultKind::kLinkDown, first.a, first.b, 0},
      {4500, faults::FaultKind::kLinkDown, second.a, second.b, 0},
      {6000, faults::FaultKind::kSwitchDown, 0, 0, dead},
  });
  plan.ValidateFor(network);
  std::cout << "\nFault plan:\n" << plan.ToJson() << "\n";

  // 3. Run the wormhole simulator through the plan: traffic to lost hardware
  //    is dropped, arbitration freezes for the reconfiguration window, and
  //    the degraded routing takes over atomically.
  const sim::TrafficPattern traffic(network, workload, scheduled.mapping);
  sim::SimConfig config;
  config.warmup_cycles = 2000;
  config.measure_cycles = 10000;
  config.fault_plan = &plan;
  sim::NetworkSimulator simulator(network, routing, traffic, config);
  const sim::SimMetrics metrics = simulator.Run(0.2);
  std::cout << "\nSimulated through the faults:\n";
  std::cout << "  fault events applied: " << metrics.fault_events_applied << "\n";
  std::cout << "  flits dropped:        " << metrics.dropped_flits << "\n";
  std::cout << "  messages lost:        " << metrics.messages_lost << "\n";
  std::cout << "  reconfig cycles:      " << metrics.reconfig_cycles << "\n";
  std::cout << "  messages delivered:   " << metrics.messages_delivered << "\n";

  // 4. Reconfigure explicitly and repair the mapping on the survivors.
  faults::DegradedView view(network);
  for (const faults::FaultEvent& event : plan.events()) view.Apply(event);
  const faults::DegradedRouting degraded(network, view.Reconfigure());
  const faults::Reconfiguration& reconfig = degraded.reconfig();
  std::cout << "\nReconfiguration: " << reconfig.graph.switch_count()
            << " surviving switches, " << reconfig.dead.size() << " dead, "
            << reconfig.evicted.size() << " evicted by partition\n";

  const dist::DistanceTable degraded_table =
      dist::DistanceTable::Build(degraded.compact_routing());
  std::vector<std::size_t> survivors(reconfig.graph.switch_count());
  for (topo::SwitchId s = 0; s < network.switch_count(); ++s) {
    if (reconfig.to_compact[s].has_value()) {
      survivors[*reconfig.to_compact[s]] = scheduled.partition.ClusterOf(s);
    }
  }
  sched::RepairOptions options;
  options.migration_budget = network.switch_count() / 4;  // migrate <= 25%
  const sched::RepairOutcome repaired = sched::AnchoredRepair(
      degraded_table, qual::Partition(survivors), {}, std::nullopt, options);
  std::cout << "Anchored repair: " << repaired.refinement_swaps << " swaps, "
            << repaired.displaced << " switches displaced (budget "
            << options.migration_budget << ")\n";
  std::cout << "Repaired partition: " << repaired.repaired.ToString() << "\n";
  std::cout << "Post-repair C_c = " << repaired.repaired_cc << " ("
            << 100.0 * repaired.repaired_cc / scheduled.cc << "% of pre-fault)\n";
  return 0;
}
