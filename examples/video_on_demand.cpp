// Video-on-demand placement — the bandwidth-bound scenario the paper's
// introduction motivates: streaming applications whose bottleneck is the
// interconnect, not the CPUs.
//
// A 24-switch NOW hosts three VoD server farms with very different traffic
// intensities plus a background batch application. The communication-aware
// scheduler packs each farm onto tightly-coupled switches; we measure the
// latency seen by the heavy farm under increasing load against a random
// placement.
#include <iostream>

#include "core/commsched.h"

int main() {
  using namespace commsched;

  const topo::SwitchGraph network = topo::MakeFourRingsOfSix();
  const route::UpDownRouting routing(network);

  // 96 workstations. Farms sized in multiples of 4 hosts (whole switches).
  const work::Workload workload({
      {"vod-hd", 24, 4.0, 0.0},     // heavy: HD streaming farm
      {"vod-sd", 24, 2.0, 0.0},     // medium: SD streaming farm
      {"transcode", 24, 1.0, 0.0},  // transcoding cluster
      {"batch", 24, 0.25, 0.0},     // background batch jobs
  });

  const sched::CommAwareScheduler scheduler(network, routing);
  sched::TabuOptions tabu;
  tabu.max_iterations_per_seed = 60;  // larger budget: 24 switches
  const sched::ScheduleOutcome outcome = scheduler.Schedule(workload, tabu);

  std::cout << "Placement found by the communication-aware scheduler:\n";
  for (std::size_t a = 0; a < workload.application_count(); ++a) {
    std::cout << "  " << workload.applications()[a].name << " -> switches ";
    std::cout << Join(outcome.partition.Members(a), ",") << "\n";
  }
  std::cout << "Clustering coefficient C_c = " << outcome.cc << "\n\n";

  Rng rng(7);
  const work::ProcessMapping random_mapping =
      work::ProcessMapping::RandomAligned(network, workload, rng);

  sim::SweepOptions sweep;
  sweep.points = 6;
  sweep.min_rate = 0.05;
  sweep.max_rate = 0.8;
  sweep.config.warmup_cycles = 3000;
  sweep.config.measure_cycles = 8000;

  const sim::TrafficPattern op_traffic(network, workload, outcome.mapping);
  const sim::TrafficPattern rnd_traffic(network, workload, random_mapping);
  const sim::SweepResult op = sim::RunLoadSweep(network, routing, op_traffic, sweep);
  const sim::SweepResult rnd = sim::RunLoadSweep(network, routing, rnd_traffic, sweep);

  TextTable table({"offered", "latency(sched)", "p99(sched)", "latency(random)",
                   "p99(random)", "accepted(sched)", "accepted(random)"});
  table.set_precision(3);
  for (std::size_t k = 0; k < op.points.size(); ++k) {
    table.AddRow({op.points[k].offered_rate, op.points[k].metrics.avg_latency_cycles,
                  op.points[k].metrics.p99_latency_cycles,
                  rnd.points[k].metrics.avg_latency_cycles,
                  rnd.points[k].metrics.p99_latency_cycles,
                  op.points[k].metrics.accepted_flits_per_switch_cycle,
                  rnd.points[k].metrics.accepted_flits_per_switch_cycle});
  }
  std::cout << table;
  // Streaming cares about the tail: report the heavy farm's p99 at the
  // highest load both mappings sustain.
  std::cout << "\n(99th-percentile latency is what a video stream's jitter buffer sees)\n";
  std::cout << "\nThroughput: scheduled " << op.Throughput() << " vs random "
            << rnd.Throughput() << " flits/switch/cycle ("
            << (op.Throughput() / rnd.Throughput()) << "x)\n";
  return 0;
}
