// Quickstart: schedule four parallel applications onto a random irregular
// NOW and see how much network headroom the communication-aware mapping buys.
//
//   ./examples/quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "core/commsched.h"

int main(int argc, char** argv) {
  using namespace commsched;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  // 1. A 16-switch irregular network, 4 workstations per switch (the
  //    paper's standard configuration).
  topo::IrregularTopologyOptions topo_options;
  topo_options.switch_count = 16;
  topo_options.seed = seed;
  const topo::SwitchGraph network = topo::GenerateIrregularTopology(topo_options);
  std::cout << "Network: " << network.switch_count() << " switches, "
            << network.host_count() << " workstations, " << network.link_count()
            << " links (seed " << seed << ")\n";

  // 2. Up*/down* routing and the table of equivalent distances.
  const route::UpDownRouting routing(network);
  std::cout << "Routing: " << routing.Name() << ", root switch " << routing.root()
            << ", deadlock-free: " << (route::IsDeadlockFree(routing) ? "yes" : "no") << "\n";

  // 3. Four applications of 16 processes each — one process per workstation.
  const work::Workload workload = work::Workload::Uniform(4, network.host_count() / 4);

  // 4. The communication-aware scheduler (Tabu search on F_G).
  const sched::CommAwareScheduler scheduler(network, routing);
  const sched::ScheduleOutcome outcome = scheduler.Schedule(workload);
  std::cout << "\nScheduled partition: " << outcome.partition.ToString() << "\n";
  std::cout << "F_G = " << outcome.fg << "  D_G = " << outcome.dg
            << "  C_c = " << outcome.cc << "\n";
  std::cout << "Tabu search: " << outcome.search.iterations << " moves, "
            << outcome.search.evaluations << " swap evaluations\n";

  // 5. Compare against a random placement by simulation.
  Rng rng(seed + 1000);
  const work::ProcessMapping random_mapping =
      work::ProcessMapping::RandomAligned(network, workload, rng);

  sim::SweepOptions sweep;
  sweep.points = 6;
  sweep.min_rate = 0.05;
  sweep.max_rate = 1.0;
  sweep.config.warmup_cycles = 3000;
  sweep.config.measure_cycles = 8000;

  const sim::TrafficPattern op_traffic(network, workload, outcome.mapping);
  const sim::TrafficPattern rnd_traffic(network, workload, random_mapping);
  const double op_tp = sim::RunLoadSweep(network, routing, op_traffic, sweep).Throughput();
  const double rnd_tp = sim::RunLoadSweep(network, routing, rnd_traffic, sweep).Throughput();

  std::cout << "\nThroughput (flits/switch/cycle):\n";
  std::cout << "  communication-aware mapping: " << op_tp << "\n";
  std::cout << "  random mapping:              " << rnd_tp << "\n";
  std::cout << "  improvement:                 " << (op_tp / rnd_tp - 1.0) * 100.0 << " %\n";
  return 0;
}
