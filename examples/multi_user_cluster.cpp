// Multi-user heterogeneous cluster: several users each run a parallel
// application on a shared NOW (the paper's base scenario, §4). This example
// walks the full decision a communication-aware scheduler would make:
//   1. characterize the network (distance table),
//   2. score the *current* (random) placement,
//   3. propose a better placement and quantify the gain,
//   4. show the intercluster-traffic extension knob (paper's future work).
#include <iostream>

#include "core/commsched.h"

int main() {
  using namespace commsched;

  topo::IrregularTopologyOptions topo_options;
  topo_options.switch_count = 20;
  topo_options.seed = 42;
  const topo::SwitchGraph network = topo::GenerateIrregularTopology(topo_options);
  const route::UpDownRouting routing(network);
  const sched::CommAwareScheduler scheduler(network, routing);

  // Five users, applications of different sizes (multiples of 4 processes).
  const work::Workload workload({
      {"alice/cfd", 24},
      {"bob/render", 20},
      {"carol/mdyn", 16},
      {"dave/sort", 12},
      {"erin/web", 8},
  });

  // The cluster's current placement: first-come-first-served (blocked order
  // of arrival) — what a communication-oblivious scheduler would do.
  const qual::Partition fcfs = qual::Partition::Blocked(workload.ClusterSwitchSizes(network));
  const work::ProcessMapping current = work::ProcessMapping::FromPartition(network, workload, fcfs);
  const sched::ScheduleOutcome current_score = scheduler.Evaluate(workload, current);
  std::cout << "Current (FCFS) placement: C_c = " << current_score.cc
            << ", F_G = " << current_score.fg << "\n";

  // Communication-aware proposal.
  sched::TabuOptions tabu;
  tabu.max_iterations_per_seed = 50;
  const sched::ScheduleOutcome proposal = scheduler.Schedule(workload, tabu);
  std::cout << "Proposed placement:       C_c = " << proposal.cc << ", F_G = " << proposal.fg
            << "\n\n";
  for (std::size_t a = 0; a < workload.application_count(); ++a) {
    std::cout << "  " << workload.applications()[a].name << " -> switches "
              << Join(proposal.partition.Members(a), ",") << "\n";
  }

  // Simulated confirmation at a moderate load.
  sim::SimConfig config;
  config.warmup_cycles = 3000;
  config.measure_cycles = 8000;
  const double load = 0.35;
  const sim::TrafficPattern cur_traffic(network, workload, current);
  const sim::TrafficPattern new_traffic(network, workload, proposal.mapping);
  sim::NetworkSimulator cur_sim(network, routing, cur_traffic, config);
  sim::NetworkSimulator new_sim(network, routing, new_traffic, config);
  const sim::SimMetrics cur_m = cur_sim.Run(load);
  const sim::SimMetrics new_m = new_sim.Run(load);
  std::cout << "\nAt offered load " << load << " flits/switch/cycle:\n";
  std::cout << "  FCFS     latency " << cur_m.avg_latency_cycles << " cycles, accepted "
            << cur_m.accepted_flits_per_switch_cycle << "\n";
  std::cout << "  proposed latency " << new_m.avg_latency_cycles << " cycles, accepted "
            << new_m.accepted_flits_per_switch_cycle << "\n";

  // Extension: 10 % of traffic crosses application boundaries (the paper's
  // "future work" relaxation) — the gain shrinks but persists.
  std::vector<work::ApplicationSpec> leaky_apps = workload.applications();
  for (auto& app : leaky_apps) app.intercluster_fraction = 0.10;
  const work::Workload leaky(leaky_apps);
  const sim::TrafficPattern leaky_cur(network, leaky, current);
  const sim::TrafficPattern leaky_new(network, leaky, proposal.mapping);
  sim::NetworkSimulator leaky_cur_sim(network, routing, leaky_cur, config);
  sim::NetworkSimulator leaky_new_sim(network, routing, leaky_new, config);
  std::cout << "\nWith 10 % intercluster traffic:\n";
  std::cout << "  FCFS     latency " << leaky_cur_sim.Run(load).avg_latency_cycles << " cycles\n";
  std::cout << "  proposed latency " << leaky_new_sim.Run(load).avg_latency_cycles << " cycles\n";
  return 0;
}
