// Topology explorer: generate or load a topology, inspect its up*/down*
// structure and equivalent-distance table, and export Graphviz colored by
// the scheduled partition.
//
//   ./examples/topology_explorer                      # random 16-switch net
//   ./examples/topology_explorer rings                # the paper's 24-switch net
//   ./examples/topology_explorer random <N> <seed>    # random N-switch net
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/commsched.h"

int main(int argc, char** argv) {
  using namespace commsched;

  const std::string kind = argc > 1 ? argv[1] : "random";
  std::size_t switches = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  topo::SwitchGraph network = [&] {
    if (kind == "rings") {
      switches = 24;
      return topo::MakeFourRingsOfSix();
    }
    if (kind == "mesh") {
      return topo::MakeMesh2D(4, switches / 4);
    }
    topo::IrregularTopologyOptions options;
    options.switch_count = switches;
    options.seed = seed;
    return topo::GenerateIrregularTopology(options);
  }();

  std::cout << "# Topology (" << kind << ")\n" << topo::ToText(network) << "\n";

  const route::UpDownRouting routing(network);
  std::cout << "up*/down* root: switch " << routing.root() << "\n";
  std::cout << "deadlock-free on one virtual channel: "
            << (route::IsDeadlockFree(routing) ? "yes" : "no") << "\n";
  std::cout << "BFS levels:";
  for (topo::SwitchId s = 0; s < network.switch_count(); ++s) {
    std::cout << ' ' << routing.Level(s);
  }
  std::cout << "\n\n# Table of equivalent distances\n";
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);
  std::cout << table.ToCsv();
  std::cout << "mean squared distance: " << table.MeanSquaredDistance() << "\n";
  std::cout << "defines a metric space: "
            << (table.SatisfiesTriangleInequality() ? "yes" : "no (as the paper notes)") << "\n";

  if (network.switch_count() % 4 == 0) {
    const std::vector<std::size_t> sizes(4, network.switch_count() / 4);
    const sched::SearchResult best = sched::TabuSearch(table, sizes);
    std::cout << "\n# Best 4-cluster partition (C_c = " << best.best_cc << ")\n"
              << best.best.ToString() << "\n";
    std::cout << "\n# Graphviz (colored by cluster)\n"
              << topo::ToDot(network, best.best.cluster_of_switch());
  }
  return 0;
}
