// Seeded synthetic workload generator for the multilevel pipeline.
//
//   gen_workload --pattern ring|grid|random|clique --procs N [--seed S]
//                [--weight W] [--degree D] [--groups K] [--out F]
//
// Emits a process communication graph in quality/comm_graph.h's text format
// ("commgraph v1") to stdout or --out. ring/grid/random mirror the
// work::MakePatternComm generators the CLI's --multilevel path uses; clique
// splits --procs into --groups equal cliques (the dense model's structure,
// handy for sparse-vs-dense parity experiments).
#include <fstream>
#include <iostream>
#include <string>

#include "core/commsched.h"

namespace {

using namespace commsched;

int Usage() {
  std::cerr << "usage: gen_workload --pattern ring|grid|random|clique --procs N\n"
               "  --seed S    rng seed for --pattern random (default 1)\n"
               "  --weight W  edge weight for ring/clique (default 1.0)\n"
               "  --degree D  average degree for --pattern random (default 4)\n"
               "  --groups K  clique count for --pattern clique (default 4;\n"
               "              must divide --procs)\n"
               "  --out F     write to F instead of stdout\n";
  return 2;
}

qual::CommGraph Generate(const std::string& pattern, std::size_t procs, std::uint64_t seed,
                         double weight, std::size_t degree, std::size_t groups) {
  if (pattern == "ring") return work::MakeRingComm(procs, weight);
  if (pattern == "grid") return work::MakeGridComm(procs);
  if (pattern == "random") return work::MakeRandomComm(procs, degree, seed);
  if (pattern == "clique") {
    if (groups == 0 || procs % groups != 0) {
      throw ConfigError("--groups must divide --procs");
    }
    return work::MakeCliqueComm(std::vector<std::size_t>(groups, procs / groups), weight);
  }
  throw ConfigError("unknown pattern '" + pattern + "' (ring|grid|random|clique)");
}

}  // namespace

int main(int argc, char** argv) {
  std::string pattern;
  std::size_t procs = 0;
  std::uint64_t seed = 1;
  double weight = 1.0;
  std::size_t degree = 4;
  std::size_t groups = 4;
  std::string out_path;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string key = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw ConfigError(key + " requires a value");
        return argv[++i];
      };
      if (key == "--pattern") {
        pattern = value();
      } else if (key == "--procs") {
        procs = std::stoull(value());
      } else if (key == "--seed") {
        seed = std::stoull(value());
      } else if (key == "--weight") {
        weight = std::stod(value());
      } else if (key == "--degree") {
        degree = std::stoull(value());
      } else if (key == "--groups") {
        groups = std::stoull(value());
      } else if (key == "--out") {
        out_path = value();
      } else {
        return Usage();
      }
    }
    if (pattern.empty() || procs == 0) return Usage();
    const qual::CommGraph graph = Generate(pattern, procs, seed, weight, degree, groups);
    if (out_path.empty()) {
      std::cout << graph.ToText();
    } else {
      std::ofstream out(out_path);
      if (!out) throw ConfigError("cannot open '" + out_path + "' for writing");
      out << graph.ToText();
      std::cout << "wrote " << graph.vertex_count() << " vertices, " << graph.edge_count()
                << " edges to " << out_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
