// bench_compare: gate benchmark results against a checked-in baseline.
//
//   bench_compare --baseline bench/baselines/BENCH_engine.json \
//                 --current BENCH_engine.json [--threshold 0.15] [--metric real_time]
//
// Both files are google-benchmark JSON (--benchmark_format=json). When a file
// was produced with --benchmark_repetitions, only the "median" aggregate rows
// are compared (single runs are noisy); otherwise the plain iteration rows
// are used. For every benchmark present in both files the relative change of
// the chosen metric is printed; if any benchmark slowed down by more than
// the threshold (default 15%), the exit code is 1. Benchmarks that exist in
// only one file are reported but never fail the gate, so adding or retiring
// a benchmark does not require a lockstep baseline update.
//
// Exit codes: 0 within threshold, 1 regression, 2 bad invocation/input.
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "service/json.h"

namespace {

using namespace commsched;

struct Options {
  std::string baseline;
  std::string current;
  std::string metric = "real_time";
  double threshold = 0.15;
};

int Usage() {
  std::cerr << "usage: bench_compare --baseline FILE --current FILE\n"
               "                     [--threshold 0.15] [--metric real_time]\n"
               "compares google-benchmark JSON files (median aggregates when\n"
               "present) and exits 1 on a regression beyond the threshold\n";
  return 2;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// name -> metric value, preferring "median" aggregate rows over raw
/// iteration rows (the aggregate's name suffix "_median" is stripped so the
/// two forms compare against each other).
std::map<std::string, double> LoadBenchmarks(const std::string& path,
                                             const std::string& metric) {
  const svc::JsonValue root = svc::ParseJson(ReadFile(path));
  const svc::JsonValue* benchmarks = root.Find("benchmarks");
  if (benchmarks == nullptr) {
    throw ConfigError("'" + path + "' has no \"benchmarks\" array (not google-benchmark JSON?)");
  }
  std::map<std::string, double> raw;
  std::map<std::string, double> medians;
  for (const svc::JsonValue& entry : benchmarks->AsArray("benchmarks")) {
    const svc::JsonValue* name = entry.Find("name");
    const svc::JsonValue* value = entry.Find(metric);
    if (name == nullptr || value == nullptr) continue;
    std::string label = name->AsString("benchmark name");
    const svc::JsonValue* aggregate = entry.Find("aggregate_name");
    if (aggregate != nullptr) {
      if (aggregate->AsString("aggregate_name") != "median") continue;
      const std::string suffix = "_median";
      if (label.size() > suffix.size() &&
          label.compare(label.size() - suffix.size(), suffix.size(), suffix) == 0) {
        label.resize(label.size() - suffix.size());
      }
      medians[label] = value->AsDouble(metric);
    } else {
      raw[label] = value->AsDouble(metric);
    }
  }
  if (!medians.empty()) return medians;
  if (raw.empty()) throw ConfigError("'" + path + "' contains no comparable benchmarks");
  return raw;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Options options;
    for (int i = 1; i < argc; ++i) {
      const std::string key = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw ConfigError(key + " requires a value");
        return argv[++i];
      };
      if (key == "--baseline") {
        options.baseline = next();
      } else if (key == "--current") {
        options.current = next();
      } else if (key == "--metric") {
        options.metric = next();
      } else if (key == "--threshold") {
        options.threshold = std::stod(next());
      } else {
        std::cerr << "unknown flag '" << key << "'\n";
        return Usage();
      }
    }
    if (options.baseline.empty() || options.current.empty()) return Usage();
    if (options.threshold <= 0) throw ConfigError("--threshold must be positive");

    const std::map<std::string, double> baseline =
        LoadBenchmarks(options.baseline, options.metric);
    const std::map<std::string, double> current =
        LoadBenchmarks(options.current, options.metric);

    std::vector<std::string> regressions;
    std::cout << std::fixed << std::setprecision(1);
    for (const auto& [name, base_value] : baseline) {
      const auto it = current.find(name);
      if (it == current.end()) {
        std::cout << "MISSING    " << name << " (in baseline only)\n";
        continue;
      }
      if (base_value <= 0) continue;  // degenerate baseline row, nothing to gate
      const double change = (it->second - base_value) / base_value;
      const char* verdict = change > options.threshold ? "REGRESSED " : "ok        ";
      std::cout << verdict << name << "  " << options.metric << " " << base_value << " -> "
                << it->second << "  (" << std::showpos << change * 100.0 << std::noshowpos
                << "%)\n";
      if (change > options.threshold) regressions.push_back(name);
    }
    for (const auto& [name, value] : current) {
      if (baseline.count(name) == 0) {
        std::cout << "NEW        " << name << " (no baseline)\n";
      }
    }
    if (!regressions.empty()) {
      std::cout << regressions.size() << " benchmark(s) regressed beyond "
                << options.threshold * 100.0 << "%\n";
      return 1;
    }
    std::cout << "all benchmarks within " << options.threshold * 100.0 << "% of baseline\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
