// metrics_check: validates Prometheus text exposition (CI gate).
//
//   metrics_check [--file metrics.txt] [--require commsched_svc_requests_total]...
//
// Reads the exposition from --file (or stdin), checks that it is
// syntactically valid Prometheus text format, that every sample belongs to
// a family announced by a preceding "# TYPE" line, that histogram families
// carry a "+Inf" bucket, and that every --require'd family is present with
// at least one sample. Exits 0 when valid, 1 with a line-numbered
// diagnostic otherwise — a scrape that Prometheus would reject should fail
// the build, not the fleet.
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_' || name[0] == ':')) {
    return false;
  }
  for (const char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':')) return false;
  }
  return true;
}

bool ValidLabelName(const std::string& name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_')) return false;
  for (const char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) return false;
  }
  return true;
}

/// Parses `{key="value",...}` starting at text[pos] == '{'. Returns false
/// on malformed labels; advances pos past the closing brace.
bool ParseLabels(const std::string& text, std::size_t& pos, std::string* error,
                 std::map<std::string, std::string>* labels) {
  ++pos;  // '{'
  while (pos < text.size() && text[pos] != '}') {
    std::string name;
    while (pos < text.size() && text[pos] != '=') name += text[pos++];
    if (!ValidLabelName(name)) {
      *error = "bad label name '" + name + "'";
      return false;
    }
    if (pos >= text.size() || text[pos] != '=') {
      *error = "label '" + name + "' missing '='";
      return false;
    }
    ++pos;
    if (pos >= text.size() || text[pos] != '"') {
      *error = "label '" + name + "' value not quoted";
      return false;
    }
    ++pos;
    std::string value;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') {
        ++pos;
        if (pos >= text.size()) break;
      }
      value += text[pos++];
    }
    if (pos >= text.size()) {
      *error = "unterminated label value for '" + name + "'";
      return false;
    }
    ++pos;  // closing quote
    (*labels)[name] = value;
    if (pos < text.size() && text[pos] == ',') ++pos;
  }
  if (pos >= text.size() || text[pos] != '}') {
    *error = "unterminated label set";
    return false;
  }
  ++pos;
  return true;
}

/// The family a sample name belongs to: histogram/summary samples use the
/// _bucket/_sum/_count suffixes of their declared family.
std::string FamilyOf(const std::string& name, const std::set<std::string>& declared) {
  if (declared.count(name) > 0) return name;
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s = suffix;
    if (name.size() > s.size() && name.compare(name.size() - s.size(), s.size(), s) == 0) {
      const std::string base = name.substr(0, name.size() - s.size());
      if (declared.count(base) > 0) return base;
    }
  }
  return "";
}

int Fail(std::size_t line_number, const std::string& line, const std::string& reason) {
  std::cerr << "metrics_check: line " << line_number << ": " << reason << "\n  " << line << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> required;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--file" && i + 1 < argc) {
      path = argv[++i];
    } else if (arg == "--require" && i + 1 < argc) {
      required.emplace_back(argv[++i]);
    } else {
      std::cerr << "usage: metrics_check [--file F] [--require METRIC]...\n";
      return 2;
    }
  }

  std::ifstream file;
  if (!path.empty()) {
    file.open(path);
    if (!file) {
      std::cerr << "metrics_check: cannot open '" << path << "'\n";
      return 1;
    }
  }
  std::istream& in = path.empty() ? std::cin : file;

  std::set<std::string> declared;
  std::map<std::string, std::string> family_type;  // family -> counter|gauge|...
  std::map<std::string, std::size_t> samples_per_family;
  std::set<std::string> histogram_with_inf;
  std::size_t line_number = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, keyword, name, kind;
      comment >> hash >> keyword;
      if (keyword == "TYPE") {
        comment >> name >> kind;
        if (!ValidMetricName(name)) return Fail(line_number, line, "bad family name");
        static const std::set<std::string> kKinds = {"counter", "gauge", "histogram",
                                                     "summary", "untyped"};
        if (kKinds.count(kind) == 0) return Fail(line_number, line, "bad TYPE '" + kind + "'");
        if (declared.count(name) > 0) {
          return Fail(line_number, line, "family '" + name + "' declared twice");
        }
        declared.insert(name);
        family_type[name] = kind;
      }
      continue;  // HELP and free comments pass through
    }

    // Sample line: name[{labels}] value
    std::size_t pos = 0;
    std::string name;
    while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') name += line[pos++];
    if (!ValidMetricName(name)) return Fail(line_number, line, "bad metric name '" + name + "'");
    std::map<std::string, std::string> labels;
    if (pos < line.size() && line[pos] == '{') {
      std::string error;
      if (!ParseLabels(line, pos, &error, &labels)) return Fail(line_number, line, error);
    }
    if (pos >= line.size() || line[pos] != ' ') {
      return Fail(line_number, line, "expected ' ' before the sample value");
    }
    const std::string value_text = line.substr(pos + 1);
    char* end = nullptr;
    std::strtod(value_text.c_str(), &end);
    const bool inf_or_nan = value_text == "+Inf" || value_text == "-Inf" || value_text == "NaN";
    if (!inf_or_nan && (end == value_text.c_str() || *end != '\0')) {
      return Fail(line_number, line, "bad sample value '" + value_text + "'");
    }

    const std::string family = FamilyOf(name, declared);
    if (family.empty()) {
      return Fail(line_number, line, "sample '" + name + "' has no preceding # TYPE");
    }
    samples_per_family[family]++;
    if (family_type[family] == "histogram" && labels.count("le") > 0 &&
        labels.at("le") == "+Inf") {
      histogram_with_inf.insert(family);
    }
  }

  for (const auto& [family, kind] : family_type) {
    if (kind == "histogram" && histogram_with_inf.count(family) == 0 &&
        samples_per_family[family] > 0) {
      std::cerr << "metrics_check: histogram '" << family << "' has no le=\"+Inf\" bucket\n";
      return 1;
    }
  }
  for (const std::string& name : required) {
    if (samples_per_family.count(name) == 0 || samples_per_family[name] == 0) {
      std::cerr << "metrics_check: required metric '" << name << "' is missing\n";
      return 1;
    }
  }
  std::cout << "metrics_check: " << family_type.size() << " families, OK\n";
  return 0;
}
