// store_fsck: integrity check for a commsched artifact store directory.
//
//   store_fsck <store-dir> [--verbose]
//
// Verifies every *.csart file in the directory — header shape, magic,
// version, kind, payload size against the file size (truncation), and the
// FNV-1a payload hash (bit rot / partial overwrites) — using exactly the
// checks a serving daemon applies before trusting an artifact
// (svc::ArtifactStore::VerifyFile). Dot-prefixed temp files from in-flight
// writes are skipped. Exit 0 when every artifact verifies, 1 when any
// fails (each failure is printed with its reason), 2 on usage errors.
//
// CI runs this after the warm-restart gate, once against the healthy store
// and once against a deliberately corrupted file as a must-fail case.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "service/store.h"

namespace fs = std::filesystem;

int main(int argc, char** argv) {
  std::string dir;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verbose") {
      verbose = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "usage: store_fsck <store-dir> [--verbose]\n";
      return 2;
    } else if (dir.empty()) {
      dir = arg;
    } else {
      std::cerr << "usage: store_fsck <store-dir> [--verbose]\n";
      return 2;
    }
  }
  if (dir.empty()) {
    std::cerr << "usage: store_fsck <store-dir> [--verbose]\n";
    return 2;
  }

  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    std::cerr << "store_fsck: '" << dir << "' is not a directory\n";
    return 2;
  }

  std::size_t checked = 0;
  std::size_t bad = 0;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.empty() || name[0] == '.') continue;  // in-flight temp files
    if (name.size() < 6 || name.compare(name.size() - 6, 6, ".csart") != 0) continue;
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& path : files) {
    ++checked;
    const commsched::svc::VerifyResult verdict =
        commsched::svc::ArtifactStore::VerifyFile(path.string());
    if (verdict.ok) {
      if (verbose) {
        std::cout << "ok   " << path.filename().string() << " kind=" << verdict.kind
                  << " payload=" << verdict.payload_size << "B\n";
      }
    } else {
      ++bad;
      std::cout << "FAIL " << path.filename().string() << ": " << verdict.error << "\n";
    }
  }

  std::cout << "store_fsck: " << checked << " artifact(s), " << bad << " bad\n";
  return bad == 0 ? 0 : 1;
}
