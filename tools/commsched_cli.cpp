// commsched command-line interface.
//
//   commsched_cli topo     --kind random --switches 16 --seed 1 [--dot]
//   commsched_cli distance --kind rings [--hops]
//   commsched_cli schedule --kind random --switches 16 --apps 4 [--seeds 10]
//                          [--algo tabu|sd|random|sa|gsa] [--parallel-seeds]
//   commsched_cli simulate --kind rings --apps 4 --mapping op|random|blocked
//                          [--points 9] [--max-rate 1.4] [--vcs 1] [--duato]
//                          [--telemetry N] [--fault-plan plan.json]
//                          [--reconfig-downtime 128]
//   commsched_cli experiment --kind random --switches 16 [--randoms 9]
//   commsched_cli report   --trace run.jsonl [--metrics-file m.json]
//                          [--csv sweep.csv] [--top 5]
//
// Observability (any command): --trace <file> streams structured JSONL
// events (search moves/restarts, simulator milestones, sweep points) to the
// file; --metrics prints the global counter/timer registry as one JSON line
// after the command output; --metrics-out <file> writes the same JSON to a
// file; --chrome-trace <file> writes a Chrome trace-event profile of the
// run's spans (load in Perfetto / chrome://tracing).
//
// Topology kinds: random (paper's irregular model), rings (the designed
// 24-switch net), mixed (dense/sparse 16-switch), mesh RxC, torus RxC,
// hypercube D, file <path> (text format of topology/serialize.h).
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "core/commsched.h"

namespace {

using namespace commsched;

/// Minimal --flag/--flag value argument parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw ConfigError("expected --flag, got '" + key + "'");
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // boolean flag
      }
    }
  }

  [[nodiscard]] bool Has(const std::string& key) const { return values_.count(key) > 0; }

  [[nodiscard]] std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] std::size_t GetSize(const std::string& key, std::size_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }

  [[nodiscard]] double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

topo::SwitchGraph BuildTopology(const Args& args) {
  const std::string kind = args.Get("kind", "random");
  if (kind == "random") {
    topo::IrregularTopologyOptions options;
    options.switch_count = args.GetSize("switches", 16);
    options.hosts_per_switch = args.GetSize("hosts", 4);
    options.interswitch_degree = args.GetSize("degree", 3);
    options.seed = args.GetSize("seed", 1);
    return topo::GenerateIrregularTopology(options);
  }
  if (kind == "rings") return topo::MakeFourRingsOfSix(args.GetSize("hosts", 4));
  if (kind == "mixed") return topo::MakeMixedDensity16(args.GetSize("hosts", 4));
  if (kind == "mesh") {
    return topo::MakeMesh2D(args.GetSize("rows", 4), args.GetSize("cols", 4),
                            args.GetSize("hosts", 4));
  }
  if (kind == "torus") {
    return topo::MakeTorus2D(args.GetSize("rows", 4), args.GetSize("cols", 4),
                             args.GetSize("hosts", 4));
  }
  if (kind == "hypercube") {
    return topo::MakeHypercube(args.GetSize("dim", 4), args.GetSize("hosts", 4));
  }
  if (kind == "file") {
    const std::string path = args.Get("path", "");
    if (path.empty()) throw ConfigError("--kind file requires --path");
    std::ifstream in(path);
    if (!in) throw ConfigError("cannot open '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    return topo::FromText(text.str());
  }
  throw ConfigError("unknown topology kind '" + kind + "'");
}

int CmdTopo(const Args& args) {
  const topo::SwitchGraph graph = BuildTopology(args);
  if (args.Has("dot")) {
    std::cout << topo::ToDot(graph);
    return 0;
  }
  std::cout << topo::ToText(graph);
  const route::UpDownRouting routing(graph);
  std::cout << "# connected: yes, up*/down* root: " << routing.root()
            << ", deadlock-free: " << (route::IsDeadlockFree(routing) ? "yes" : "no") << "\n";
  return 0;
}

int CmdDistance(const Args& args) {
  const topo::SwitchGraph graph = BuildTopology(args);
  const route::UpDownRouting routing(graph);
  const dist::DistanceTable table = args.Has("hops")
                                        ? dist::DistanceTable::BuildHopCount(routing)
                                        : dist::DistanceTable::Build(routing);
  std::cout << table.ToCsv();
  return 0;
}

std::vector<std::size_t> ClusterSizes(const topo::SwitchGraph& graph, std::size_t apps) {
  if (graph.switch_count() % apps != 0) {
    throw ConfigError("switch count " + std::to_string(graph.switch_count()) +
                      " not divisible by " + std::to_string(apps) + " applications");
  }
  return std::vector<std::size_t>(apps, graph.switch_count() / apps);
}

int CmdSchedule(const Args& args) {
  const topo::SwitchGraph graph = BuildTopology(args);
  const route::UpDownRouting routing(graph);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);
  const std::size_t apps = args.GetSize("apps", 4);
  const std::vector<std::size_t> sizes = ClusterSizes(graph, apps);
  const std::string algo = args.Get("algo", "tabu");
  const bool parallel_seeds = args.Has("parallel-seeds");
  const std::uint64_t rng_seed = args.GetSize("search-seed", 1);

  // Every searcher runs on the shared engine, so they all honor
  // --parallel-seeds the same way (identical results, restarts on a pool).
  const sched::SearchResult result = [&] {
    if (algo == "tabu") {
      sched::TabuOptions options;
      options.seeds = args.GetSize("seeds", 10);
      options.max_iterations_per_seed =
          args.GetSize("iters", graph.switch_count() >= 20 ? 60 : 20);
      options.rng_seed = rng_seed;
      options.parallel_seeds = parallel_seeds;
      return sched::TabuSearch(table, sizes, options);
    }
    if (algo == "sd") {
      sched::SteepestDescentOptions options;
      options.restarts = args.GetSize("seeds", 10);
      options.max_iterations_per_restart = args.GetSize("iters", 1000);
      options.rng_seed = rng_seed;
      options.parallel_seeds = parallel_seeds;
      return sched::SteepestDescent(table, sizes, options);
    }
    if (algo == "random") {
      sched::RandomSearchOptions options;
      options.samples = args.GetSize("samples", 1000);
      options.rng_seed = rng_seed;
      options.parallel_seeds = parallel_seeds;
      return sched::RandomSearch(table, sizes, options);
    }
    if (algo == "sa") {
      sched::AnnealingOptions options;
      options.iterations = args.GetSize("iters", 20000);
      options.restarts = args.GetSize("seeds", 1);
      options.rng_seed = rng_seed;
      options.parallel_seeds = parallel_seeds;
      return sched::SimulatedAnnealing(table, sizes, options);
    }
    if (algo == "gsa") {
      sched::GeneticAnnealingOptions options;
      options.generations = args.GetSize("iters", 200);
      options.restarts = args.GetSize("seeds", 1);
      options.rng_seed = rng_seed;
      options.parallel_seeds = parallel_seeds;
      return sched::GeneticSimulatedAnnealing(table, sizes, options);
    }
    throw ConfigError("unknown --algo '" + algo + "' (tabu|sd|random|sa|gsa)");
  }();
  std::cout << "partition: " << result.best.ToString() << "\n";
  std::cout << "F_G = " << result.best_fg << ", D_G = " << result.best_dg
            << ", C_c = " << result.best_cc << "\n";
  std::cout << "moves: " << result.iterations << ", evaluations: " << result.evaluations
            << "\n";
  if (args.Has("dot")) {
    std::cout << topo::ToDot(graph, result.best.cluster_of_switch());
  }
  return 0;
}

int CmdSimulate(const Args& args) {
  const topo::SwitchGraph graph = BuildTopology(args);
  const route::UpDownRouting routing(graph);
  const std::size_t apps = args.GetSize("apps", 4);
  const work::Workload workload = work::Workload::Uniform(apps, graph.host_count() / apps);

  const std::string mapping_kind = args.Get("mapping", "op");
  qual::Partition partition = [&] {
    if (mapping_kind == "op") {
      const dist::DistanceTable table = dist::DistanceTable::Build(routing);
      sched::TabuOptions options;
      options.max_iterations_per_seed = graph.switch_count() >= 20 ? 60 : 20;
      options.parallel_seeds = args.Has("parallel-seeds");
      return sched::TabuSearch(table, ClusterSizes(graph, apps), options).best;
    }
    if (mapping_kind == "random") {
      Rng rng(args.GetSize("mapping-seed", 2000));
      return qual::Partition::Random(ClusterSizes(graph, apps), rng);
    }
    if (mapping_kind == "blocked") {
      return qual::Partition::Blocked(ClusterSizes(graph, apps));
    }
    throw ConfigError("unknown --mapping '" + mapping_kind + "' (op|random|blocked)");
  }();
  const auto mapping = work::ProcessMapping::FromPartition(graph, workload, partition);
  const sim::TrafficPattern pattern(graph, workload, mapping);

  sim::SweepOptions sweep;
  sweep.points = args.GetSize("points", 9);
  sweep.min_rate = args.GetDouble("min-rate", 0.08);
  sweep.max_rate = args.GetDouble("max-rate", 1.4);
  sweep.config.virtual_channels = args.GetSize("vcs", 1);
  sweep.config.adaptive_routing = args.Has("adaptive");
  sweep.config.warmup_cycles = args.GetSize("warmup", 5000);
  sweep.config.measure_cycles = args.GetSize("measure", 15000);
  sweep.config.telemetry_sample_cycles = args.GetSize("telemetry", 0);

  std::optional<faults::FaultPlan> plan;  // must outlive the sweep
  const std::string plan_path = args.Get("fault-plan", "");
  if (!plan_path.empty()) {
    std::ifstream plan_in(plan_path);
    if (!plan_in) throw ConfigError("cannot open fault plan '" + plan_path + "'");
    std::ostringstream plan_text;
    plan_text << plan_in.rdbuf();
    plan = faults::FaultPlan::FromJson(plan_text.str());
    plan->ValidateFor(graph);
    sweep.config.fault_plan = &*plan;
    sweep.config.reconfig_downtime_cycles = args.GetSize("reconfig-downtime", 128);
  }

  sim::SweepResult result;
  if (args.Has("duato")) {
    const std::size_t vcs = std::max<std::size_t>(2, sweep.config.virtual_channels);
    sweep.config.virtual_channels = vcs;
    const sim::DuatoFullyAdaptivePolicy policy(graph, vcs);
    result = sim::RunLoadSweep(graph, policy, pattern, sweep);
  } else {
    result = sim::RunLoadSweep(graph, routing, pattern, sweep);
  }

  std::cout << "mapping: " << partition.ToString() << "\n";
  TextTable table({"offered", "accepted", "latency", "saturated"});
  table.set_precision(4);
  for (const sim::SweepPoint& p : result.points) {
    table.AddRow({p.offered_rate, p.metrics.accepted_flits_per_switch_cycle,
                  p.metrics.avg_latency_cycles,
                  std::string(p.metrics.Saturated() ? "yes" : "no")});
  }
  std::cout << table;
  std::cout << "throughput: " << result.Throughput() << " flits/switch/cycle\n";
  if (plan.has_value()) {
    std::size_t dropped = 0;
    std::size_t lost = 0;
    std::size_t reconfig = 0;
    for (const sim::SweepPoint& p : result.points) {
      dropped += p.metrics.dropped_flits;
      lost += p.metrics.messages_lost;
      reconfig = std::max(reconfig, p.metrics.reconfig_cycles);
    }
    std::cout << "faults: " << plan->events().size() << " planned events, dropped flits "
              << dropped << ", messages lost " << lost << ", reconfig cycles/run "
              << reconfig << "\n";
  }
  return 0;
}

int CmdExperiment(const Args& args) {
  const topo::SwitchGraph graph = BuildTopology(args);
  core::ExperimentOptions options;
  options.applications = args.GetSize("apps", 4);
  options.random_mappings = args.GetSize("randoms", 9);
  options.sweep.points = args.GetSize("points", 9);
  options.sweep.min_rate = args.GetDouble("min-rate", 0.08);
  options.sweep.max_rate = args.GetDouble("max-rate", 1.4);
  options.sweep.config.warmup_cycles = args.GetSize("warmup", 5000);
  options.sweep.config.measure_cycles = args.GetSize("measure", 15000);
  options.tabu.max_iterations_per_seed = graph.switch_count() >= 20 ? 60 : 20;
  options.tabu.parallel_seeds = args.Has("parallel-seeds");
  const core::ExperimentResult result = core::RunPaperExperiment(graph, options);

  TextTable table({"mapping", "C_c", "throughput", "partition"});
  table.set_precision(4);
  for (const core::MappingEvaluation& eval : result.mappings) {
    table.AddRow({eval.label, eval.cc, eval.Throughput(), eval.partition.ToString()});
  }
  std::cout << table;
  std::cout << "OP / best random throughput: " << result.ThroughputImprovement() << "x\n";
  return 0;
}

int CmdReport(const Args& args) {
  const std::string trace_path = args.Get("trace", "");
  if (trace_path.empty()) throw ConfigError("report requires --trace <file>");
  std::ifstream in(trace_path);
  if (!in) throw ConfigError("cannot open trace file '" + trace_path + "'");
  obs::TraceSummary summary = obs::SummarizeTrace(in);
  const std::string metrics_path = args.Get("metrics-file", "");
  if (!metrics_path.empty()) {
    std::ifstream metrics_in(metrics_path);
    if (!metrics_in) throw ConfigError("cannot open metrics file '" + metrics_path + "'");
    std::ostringstream metrics_text;
    metrics_text << metrics_in.rdbuf();
    if (!obs::LoadMetrics(metrics_text.str(), summary)) {
      throw ConfigError("metrics file '" + metrics_path + "' is not a registry dump");
    }
  }
  obs::RenderReport(summary, std::cout, args.GetSize("top", 5));
  const std::string csv_path = args.Get("csv", "");
  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    if (!csv) throw ConfigError("cannot open csv file '" + csv_path + "'");
    obs::WriteSweepCsv(summary, csv);
    std::cout << "sweep csv: " << csv_path << "\n";
  }
  return 0;
}

int Usage() {
  std::cerr <<
      "usage: commsched_cli <topo|distance|schedule|simulate|experiment|report> [--flags]\n"
      "  topo       generate/describe a topology (--kind random|rings|mixed|mesh|torus|\n"
      "             hypercube|file, --switches N, --seed S, --dot)\n"
      "  distance   equivalent-distance table as CSV (--hops for hop counts)\n"
      "  schedule   search for a mapping + quality coefficients (--apps K, --seeds N,\n"
      "             --algo tabu|sd|random|sa|gsa, --parallel-seeds, --dot)\n"
      "  simulate   load sweep for a mapping (--mapping op|random|blocked,\n"
      "             --parallel-seeds for the op search, --vcs V,\n"
      "             --adaptive, --duato, --points P, --max-rate R, --telemetry N\n"
      "             to sample deep network telemetry every N measured cycles;\n"
      "             --fault-plan F replays a JSON schedule of link/switch\n"
      "             failures mid-run, --reconfig-downtime N sets the routing\n"
      "             pause after each fault)\n"
      "  experiment full paper experiment: OP vs random mappings (--randoms K,\n"
      "             --parallel-seeds)\n"
      "  report     analyse a JSONL trace: latency percentiles, hottest links,\n"
      "             per-seed convergence (--trace F, --metrics-file F, --csv F,\n"
      "             --top K)\n"
      "observability flags (any command):\n"
      "  --trace F        write a JSONL event trace (search moves, sim milestones,\n"
      "                   net.sample telemetry) to F\n"
      "  --metrics        print the counter/timer/histogram registry as one JSON\n"
      "                   line at the end\n"
      "  --metrics-out F  write the registry JSON to F (readable by report)\n"
      "  --chrome-trace F write a Chrome trace-event span profile to F\n";
  return 2;
}

int Dispatch(const std::string& command, const Args& args) {
  if (command == "topo") return CmdTopo(args);
  if (command == "distance") return CmdDistance(args);
  if (command == "schedule") return CmdSchedule(args);
  if (command == "simulate") return CmdSimulate(args);
  if (command == "experiment") return CmdExperiment(args);
  if (command == "report") return CmdReport(args);
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  try {
    const Args args(argc, argv);
    std::unique_ptr<obs::Tracer> tracer;
    std::optional<obs::ScopedTracer> scoped_tracer;
    if (args.Has("trace") && command != "report") {
      const std::string path = args.Get("trace", "");
      if (path.empty()) throw ConfigError("--trace requires a file path");
      tracer = obs::Tracer::OpenFile(path);
      scoped_tracer.emplace(*tracer);
    }
    obs::SpanCollector spans;
    std::optional<obs::ScopedSpanCollector> scoped_spans;
    if (args.Has("chrome-trace")) {
      if (args.Get("chrome-trace", "").empty()) {
        throw ConfigError("--chrome-trace requires a file path");
      }
      scoped_spans.emplace(spans);
    }
    const int rc = Dispatch(command, args);
    scoped_tracer.reset();  // uninstall before the file closes
    if (tracer != nullptr) tracer->Flush();
    scoped_spans.reset();
    if (rc == 0 && args.Has("chrome-trace")) {
      const std::string path = args.Get("chrome-trace", "");
      std::ofstream out(path);
      if (!out) throw ConfigError("cannot open chrome trace file '" + path + "'");
      spans.WriteChromeTrace(out);
    }
    if (rc == 0 && args.Has("metrics-out")) {
      const std::string path = args.Get("metrics-out", "");
      if (path.empty()) throw ConfigError("--metrics-out requires a file path");
      std::ofstream out(path);
      if (!out) throw ConfigError("cannot open metrics file '" + path + "'");
      out << obs::Registry::Global().ToJson() << "\n";
    }
    if (rc == 0 && args.Has("metrics")) {
      std::cout << obs::Registry::Global().ToJson() << "\n";
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
