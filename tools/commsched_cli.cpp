// commsched command-line interface.
//
//   commsched_cli topo     --kind random --switches 16 --seed 1 [--dot]
//   commsched_cli distance --kind rings [--hops]
//   commsched_cli schedule --kind random --switches 16 --apps 4 [--seeds 10]
//                          [--algo tabu|sd|random|sa|gsa] [--parallel-seeds]
//   commsched_cli schedule --kind torus3d --x 10 --y 10 --z 10 --multilevel
//                          --procs 100000 --pattern grid --distance hops
//   commsched_cli simulate --kind rings --apps 4 --mapping op|random|blocked
//                          [--points 9] [--max-rate 1.4] [--vcs 1] [--duato]
//                          [--telemetry N] [--fault-plan plan.json]
//                          [--reconfig-downtime 128]
//   commsched_cli experiment --kind random --switches 16 [--randoms 9]
//   commsched_cli report   --trace run.jsonl [--metrics-file m.json]
//                          [--csv sweep.csv] [--top 5]
//   commsched_cli serve    [--listen PORT] [--workers N] [--slow-ms N]
//                          [--allow-stats-reset] [--store-dir DIR]
//   commsched_cli route    --fleet HOST:PORT,HOST:PORT,... [--vnodes 64]
//   commsched_cli top      --connect [HOST:]PORT [--interval-ms 1000] [--once]
//
// Observability (any command): --trace <file> streams structured JSONL
// events (search moves/restarts, simulator milestones, sweep points) to the
// file; --metrics prints the global counter/timer registry as one JSON line
// after the command output; --metrics-out <file> writes the same JSON to a
// file; --chrome-trace <file> writes a Chrome trace-event profile of the
// run's spans (load in Perfetto / chrome://tracing).
//
// Topology kinds: random (paper's irregular model), rings (the designed
// 24-switch net), mixed (dense/sparse 16-switch), mesh RxC, torus RxC,
// hypercube D, file <path> (text format of topology/serialize.h).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/commsched.h"

namespace {

using namespace commsched;

/// Minimal --flag/--flag value argument parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw ConfigError("expected --flag, got '" + key + "'");
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // boolean flag
      }
    }
  }

  [[nodiscard]] bool Has(const std::string& key) const { return values_.count(key) > 0; }

  [[nodiscard]] std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] std::size_t GetSize(const std::string& key, std::size_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }

  [[nodiscard]] double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

topo::SwitchGraph BuildTopology(const Args& args) {
  const std::string kind = args.Get("kind", "random");
  if (kind == "random") {
    topo::IrregularTopologyOptions options;
    options.switch_count = args.GetSize("switches", 16);
    options.hosts_per_switch = args.GetSize("hosts", 4);
    options.interswitch_degree = args.GetSize("degree", 3);
    options.seed = args.GetSize("seed", 1);
    return topo::GenerateIrregularTopology(options);
  }
  if (kind == "rings") return topo::MakeFourRingsOfSix(args.GetSize("hosts", 4));
  if (kind == "mixed") return topo::MakeMixedDensity16(args.GetSize("hosts", 4));
  if (kind == "mesh") {
    return topo::MakeMesh2D(args.GetSize("rows", 4), args.GetSize("cols", 4),
                            args.GetSize("hosts", 4));
  }
  if (kind == "torus") {
    return topo::MakeTorus2D(args.GetSize("rows", 4), args.GetSize("cols", 4),
                             args.GetSize("hosts", 4));
  }
  if (kind == "torus3d") {
    return topo::MakeTorus3D(args.GetSize("x", 4), args.GetSize("y", 4), args.GetSize("z", 4),
                             args.GetSize("hosts", 4));
  }
  if (kind == "fattree") {
    return topo::MakeFatTree(args.GetSize("k", 4), args.GetSize("hosts", 4));
  }
  if (kind == "hypercube") {
    return topo::MakeHypercube(args.GetSize("dim", 4), args.GetSize("hosts", 4));
  }
  if (kind == "file") {
    const std::string path = args.Get("path", "");
    if (path.empty()) throw ConfigError("--kind file requires --path");
    std::ifstream in(path);
    if (!in) throw ConfigError("cannot open '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    return topo::FromText(text.str());
  }
  throw ConfigError("unknown topology kind '" + kind + "'");
}

int CmdTopo(const Args& args) {
  const topo::SwitchGraph graph = BuildTopology(args);
  if (args.Has("dot")) {
    std::cout << topo::ToDot(graph);
    return 0;
  }
  std::cout << topo::ToText(graph);
  const route::UpDownRouting routing(graph);
  std::cout << "# connected: yes, up*/down* root: " << routing.root()
            << ", deadlock-free: " << (route::IsDeadlockFree(routing) ? "yes" : "no") << "\n";
  return 0;
}

int CmdDistance(const Args& args) {
  const topo::SwitchGraph graph = BuildTopology(args);
  const route::UpDownRouting routing(graph);
  const dist::DistanceTable table = args.Has("hops")
                                        ? dist::DistanceTable::BuildHopCount(routing)
                                        : dist::DistanceTable::Build(routing);
  std::cout << table.ToCsv();
  return 0;
}

std::vector<std::size_t> ClusterSizes(const topo::SwitchGraph& graph, std::size_t apps) {
  if (graph.switch_count() % apps != 0) {
    throw ConfigError("switch count " + std::to_string(graph.switch_count()) +
                      " not divisible by " + std::to_string(apps) + " applications");
  }
  return std::vector<std::size_t>(apps, graph.switch_count() / apps);
}

/// The CLI's search knobs, exactly as the scheduling service interprets
/// them — both front ends funnel into svc::RunMappingSearch so a served
/// request is byte-identical to a one-shot run.
svc::SearchKnobs KnobsFromArgs(const Args& args) {
  svc::SearchKnobs knobs;
  knobs.algo = args.Get("algo", "tabu");
  if (args.Has("seeds")) knobs.seeds = args.GetSize("seeds", 0);
  if (args.Has("iters")) knobs.iterations = args.GetSize("iters", 0);
  if (args.Has("samples")) knobs.samples = args.GetSize("samples", 0);
  knobs.rng_seed = args.GetSize("search-seed", 1);
  knobs.parallel_seeds = args.Has("parallel-seeds");
  svc::ValidateSearchKnobs(knobs);  // fail at parse time, not mid-run
  return knobs;
}

/// The multilevel knobs, exactly as the service's schedule op interprets
/// them — both front ends funnel into svc::RunMultilevelSchedule so a
/// served request stays byte-identical to a one-shot run.
svc::MultilevelKnobs MultilevelKnobsFromArgs(const Args& args) {
  svc::MultilevelKnobs knobs;
  knobs.processes = args.GetSize("procs", 0);
  knobs.pattern = args.Get("pattern", "grid");
  knobs.pattern_seed = args.GetSize("pattern-seed", 1);
  knobs.coarsen_target = args.GetSize("coarsen-target", 0);
  knobs.refine_budget = args.GetSize("refine-budget", 0);
  if (args.Has("seeds")) knobs.seeds = args.GetSize("seeds", 0);
  if (args.Has("iters")) knobs.iterations = args.GetSize("iters", 0);
  knobs.rng_seed = args.GetSize("search-seed", 1);
  knobs.distance = args.Get("distance", "resistance");
  svc::ValidateMultilevelKnobs(knobs);
  return knobs;
}

int CmdScheduleMultilevel(const Args& args, const topo::SwitchGraph& graph) {
  const svc::MultilevelKnobs knobs = MultilevelKnobsFromArgs(args);
  const route::UpDownRouting routing(graph);
  // hops skips the O(N^3)-ish resistance solve — required for 1k+ switches.
  const dist::DistanceTable table = knobs.distance == "hops"
                                        ? dist::DistanceTable::BuildGraphHops(graph)
                                        : dist::DistanceTable::Build(routing);
  const sched::ml::MultilevelResult result =
      svc::RunMultilevelSchedule(table, graph.hosts_per_switch(), knobs);
  std::cout << svc::FormatMultilevelText(result, graph.switch_count(),
                                         graph.hosts_per_switch());
  return 0;
}

int CmdSchedule(const Args& args) {
  const topo::SwitchGraph graph = BuildTopology(args);
  if (args.Has("multilevel")) return CmdScheduleMultilevel(args, graph);
  const route::UpDownRouting routing(graph);
  const dist::DistanceTable table = dist::DistanceTable::Build(routing);
  const std::size_t apps = args.GetSize("apps", 4);
  const std::vector<std::size_t> sizes = ClusterSizes(graph, apps);
  const sched::SearchResult result =
      svc::RunMappingSearch(table, sizes, KnobsFromArgs(args));
  std::cout << sched::FormatSearchResult(result);
  if (args.Has("dot")) {
    std::cout << topo::ToDot(graph, result.best.cluster_of_switch());
  }
  return 0;
}

/// --sim-mode cycle|event selects the simulation engine (simnet/config.h);
/// results are statistically equivalent, event mode is much faster at low
/// load. See DESIGN.md section 11.
sim::ExecMode ParseSimMode(const Args& args) {
  const std::string mode = args.Get("sim-mode", "cycle");
  if (mode == "cycle") return sim::ExecMode::kCycle;
  if (mode == "event") return sim::ExecMode::kEvent;
  throw ConfigError("--sim-mode must be cycle or event, got '" + mode + "'");
}

int CmdSimulate(const Args& args) {
  const topo::SwitchGraph graph = BuildTopology(args);
  const route::UpDownRouting routing(graph);
  const std::size_t apps = args.GetSize("apps", 4);
  const work::Workload workload = work::Workload::Uniform(apps, graph.host_count() / apps);

  const std::string mapping_kind = args.Get("mapping", "op");
  std::optional<dist::DistanceTable> table;  // only the op mapping needs it
  if (mapping_kind == "op") table = dist::DistanceTable::Build(routing);
  const qual::Partition partition = svc::ChooseMappingPartition(
      mapping_kind, table.has_value() ? &*table : nullptr, ClusterSizes(graph, apps),
      args.GetSize("mapping-seed", 2000), args.Has("parallel-seeds"));
  const auto mapping = work::ProcessMapping::FromPartition(graph, workload, partition);
  const sim::TrafficPattern pattern(graph, workload, mapping);

  sim::SweepOptions sweep;
  sweep.points = args.GetSize("points", 9);
  sweep.min_rate = args.GetDouble("min-rate", 0.08);
  sweep.max_rate = args.GetDouble("max-rate", 1.4);
  sweep.config.virtual_channels = args.GetSize("vcs", 1);
  sweep.config.adaptive_routing = args.Has("adaptive");
  sweep.config.warmup_cycles = args.GetSize("warmup", 5000);
  sweep.config.measure_cycles = args.GetSize("measure", 15000);
  sweep.config.telemetry_sample_cycles = args.GetSize("telemetry", 0);
  sweep.config.exec_mode = ParseSimMode(args);

  std::optional<faults::FaultPlan> plan;  // must outlive the sweep
  const std::string plan_path = args.Get("fault-plan", "");
  if (!plan_path.empty()) {
    std::ifstream plan_in(plan_path);
    if (!plan_in) throw ConfigError("cannot open fault plan '" + plan_path + "'");
    std::ostringstream plan_text;
    plan_text << plan_in.rdbuf();
    plan = faults::FaultPlan::FromJson(plan_text.str());
    plan->ValidateFor(graph);
    sweep.config.fault_plan = &*plan;
    sweep.config.reconfig_downtime_cycles = args.GetSize("reconfig-downtime", 128);
  }

  sim::SweepResult result;
  if (args.Has("duato")) {
    const std::size_t vcs = std::max<std::size_t>(2, sweep.config.virtual_channels);
    sweep.config.virtual_channels = vcs;
    const sim::DuatoFullyAdaptivePolicy policy(graph, vcs);
    result = sim::RunLoadSweep(graph, policy, pattern, sweep);
  } else {
    result = sim::RunLoadSweep(graph, routing, pattern, sweep);
  }

  std::cout << svc::FormatSimulateText(partition, result);
  if (plan.has_value()) {
    std::size_t dropped = 0;
    std::size_t lost = 0;
    std::size_t reconfig = 0;
    for (const sim::SweepPoint& p : result.points) {
      dropped += p.metrics.dropped_flits;
      lost += p.metrics.messages_lost;
      reconfig = std::max(reconfig, p.metrics.reconfig_cycles);
    }
    std::cout << "faults: " << plan->events().size() << " planned events, dropped flits "
              << dropped << ", messages lost " << lost << ", reconfig cycles/run "
              << reconfig << "\n";
  }
  return 0;
}

int CmdExperiment(const Args& args) {
  const topo::SwitchGraph graph = BuildTopology(args);
  core::ExperimentOptions options;
  options.applications = args.GetSize("apps", 4);
  options.random_mappings = args.GetSize("randoms", 9);
  options.sweep.points = args.GetSize("points", 9);
  options.sweep.min_rate = args.GetDouble("min-rate", 0.08);
  options.sweep.max_rate = args.GetDouble("max-rate", 1.4);
  options.sweep.config.warmup_cycles = args.GetSize("warmup", 5000);
  options.sweep.config.measure_cycles = args.GetSize("measure", 15000);
  options.sweep.config.exec_mode = ParseSimMode(args);
  options.tabu.max_iterations_per_seed = graph.switch_count() >= 20 ? 60 : 20;
  options.tabu.parallel_seeds = args.Has("parallel-seeds");
  const core::ExperimentResult result = core::RunPaperExperiment(graph, options);

  TextTable table({"mapping", "C_c", "throughput", "partition"});
  table.set_precision(4);
  for (const core::MappingEvaluation& eval : result.mappings) {
    table.AddRow({eval.label, eval.cc, eval.Throughput(), eval.partition.ToString()});
  }
  std::cout << table;
  std::cout << "OP / best random throughput: " << result.ThroughputImprovement() << "x\n";
  return 0;
}

int CmdReport(const Args& args) {
  const std::string trace_path = args.Get("trace", "");
  if (trace_path.empty()) throw ConfigError("report requires --trace <file>");
  std::ifstream in(trace_path);
  if (!in) throw ConfigError("cannot open trace file '" + trace_path + "'");
  obs::TraceSummary summary = obs::SummarizeTrace(in);
  const std::string metrics_path = args.Get("metrics-file", "");
  if (!metrics_path.empty()) {
    std::ifstream metrics_in(metrics_path);
    if (!metrics_in) throw ConfigError("cannot open metrics file '" + metrics_path + "'");
    std::ostringstream metrics_text;
    metrics_text << metrics_in.rdbuf();
    if (!obs::LoadMetrics(metrics_text.str(), summary)) {
      throw ConfigError("metrics file '" + metrics_path + "' is not a registry dump");
    }
  }
  obs::RenderReport(summary, std::cout, args.GetSize("top", 5));
  const std::string csv_path = args.Get("csv", "");
  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    if (!csv) throw ConfigError("cannot open csv file '" + csv_path + "'");
    obs::WriteSweepCsv(summary, csv);
    std::cout << "sweep csv: " << csv_path << "\n";
  }
  return 0;
}

int CmdServe(const Args& args) {
  svc::ServiceOptions service_options;
  service_options.topology_cache_capacity = args.GetSize("topo-cache", 32);
  service_options.result_cache_capacity = args.GetSize("result-cache", 1024);
  service_options.allow_stats_reset = args.Has("allow-stats-reset");
  service_options.store_dir = args.Get("store-dir", "");
  svc::SchedulingService service(service_options);

  svc::DaemonOptions daemon_options;
  daemon_options.workers = args.GetSize("workers", 0);
  daemon_options.queue_capacity = args.GetSize("queue", 64);
  daemon_options.default_deadline_ms = args.GetSize("deadline-ms", 0);
  daemon_options.windowed_metrics = !args.Has("no-windowed-metrics");
  daemon_options.slow_request_ms = args.GetSize("slow-ms", 0);
  daemon_options.slow_log_path = args.Get("slow-log", "");
  daemon_options.slow_log_capacity = args.GetSize("slow-log-capacity", 32);

  if (args.Has("listen")) {
    const std::size_t port = args.GetSize("listen", 0);
    if (port > 65535) throw ConfigError("--listen port must be 0..65535");
    return svc::RunTcpServer(service, daemon_options, static_cast<std::uint16_t>(port),
                             std::cout);
  }
  return svc::RunStdioServer(service, daemon_options, std::cin, std::cout);
}

/// Opens a TCP connection to "[HOST:]PORT" (HOST defaults to 127.0.0.1,
/// IPv4 literal). Throws ConfigError with the failing target in the message.
int ConnectTcp(const std::string& target) {
  std::string host = "127.0.0.1";
  std::string port_text = target;
  const std::size_t colon = target.rfind(':');
  if (colon != std::string::npos) {
    host = target.substr(0, colon);
    port_text = target.substr(colon + 1);
  }
  int port = 0;
  try {
    port = std::stoi(port_text);
  } catch (const std::exception&) {
    port = -1;
  }
  if (port <= 0 || port > 65535) {
    throw ConfigError("bad target '" + target + "' (want [HOST:]PORT)");
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw ConfigError("bad host '" + host + "' (IPv4 literal expected)");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw ConfigError("cannot create socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw ConfigError("cannot connect to " + host + ":" + port_text + ": " + reason);
  }
  return fd;
}

bool WriteAllFd(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t wrote = ::write(fd, data.data() + sent, data.size() - sent);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

/// Sends one JSONL request to a serving daemon at "[HOST:]PORT" and returns
/// the response line (one connection per call; `top` refreshes are seconds
/// apart).
std::string TcpJsonRequest(const std::string& target, const std::string& line) {
  const int fd = ConnectTcp(target);
  if (!WriteAllFd(fd, line + "\n")) {
    ::close(fd);
    throw ConfigError("write to daemon failed");
  }
  std::string response;
  char chunk[4096];
  while (response.find('\n') == std::string::npos) {
    const ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;
    response.append(chunk, static_cast<std::size_t>(got));
  }
  ::close(fd);
  const std::size_t newline = response.find('\n');
  if (newline == std::string::npos) {
    throw ConfigError("daemon closed the connection without a response");
  }
  return response.substr(0, newline);
}

/// A persistent connection to one shard daemon: requests and responses are
/// newline-framed over a single socket (the daemon's TCP session serves
/// many requests per connection). Reconnects once per exchange on a broken
/// socket — a drained-and-restarted daemon looks like one failed write.
class ShardClient {
 public:
  explicit ShardClient(std::string target) : target_(std::move(target)) {}
  ~ShardClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  ShardClient(const ShardClient&) = delete;
  ShardClient& operator=(const ShardClient&) = delete;

  /// Forwards one request line, returns the daemon's response line. Throws
  /// ConfigError when the shard stays unreachable across a reconnect.
  std::string Exchange(const std::string& line) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (fd_ < 0) {
        fd_ = ConnectTcp(target_);  // throws with the target in the message
        buffer_.clear();
      }
      std::string response;
      if (TryExchange(line, &response)) return response;
      ::close(fd_);
      fd_ = -1;  // stale connection: retry on a fresh one
    }
    throw ConfigError("shard " + target_ + " closed the connection");
  }

 private:
  bool TryExchange(const std::string& line, std::string* response) {
    if (!WriteAllFd(fd_, line + "\n")) return false;
    std::size_t newline;
    while ((newline = buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
    *response = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    return true;
  }

  std::string target_;
  int fd_ = -1;
  std::string buffer_;  // bytes past the last consumed response
};

/// The consistent-hash front of a daemon fleet: forwards each stdin JSONL
/// frame to the shard owning its topology hash and relays the response, so
/// every model lives in exactly one daemon's cache (DESIGN.md §14).
int CmdRoute(const Args& args) {
  const std::string fleet = args.Get("fleet", "");
  if (fleet.empty()) throw ConfigError("route requires --fleet HOST:PORT[,HOST:PORT...]");
  std::vector<std::string> nodes;
  for (const std::string& node : Split(fleet, ',')) {
    const std::string trimmed = Trim(node);
    if (!trimmed.empty()) nodes.push_back(trimmed);
  }
  const svc::ShardRing ring(nodes, args.GetSize("vnodes", 64));
  std::vector<std::unique_ptr<ShardClient>> clients;
  clients.reserve(nodes.size());
  for (const std::string& node : ring.nodes()) {
    clients.push_back(std::make_unique<ShardClient>(node));
  }

  svc::InstallDrainSignalHandlers();  // SIGTERM/SIGINT: stop relaying, exit 0
  std::string line;
  while (!svc::DrainSignalled() && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::uint64_t key = 0;
    try {
      key = svc::ShardKeyOf(svc::ParseRequest(line));
    } catch (const std::exception&) {
      // Malformed frame: still forward it (keyed by any salvageable id) so
      // the owning daemon renders the exact error bytes a direct client
      // would see. The router adds no error dialect of its own.
      key = svc::HashBytes("id:" + svc::SalvageRequestId(line));
    }
    const std::size_t owner = ring.NodeIndexOf(key);
    try {
      std::cout << clients[owner]->Exchange(line) << "\n" << std::flush;
    } catch (const std::exception& e) {
      // Connection-level failure: the only case the router answers itself.
      std::cout << svc::ErrorResponse(svc::SalvageRequestId(line), e.what()) << "\n"
                << std::flush;
    }
  }
  return 0;
}

/// One refresh of the top dashboard: renders a stats response.
void RenderTopFrame(const std::string& target, const svc::JsonValue& stats, std::ostream& out) {
  const auto uint_at = [](const svc::JsonValue* value) -> std::uint64_t {
    return value == nullptr ? 0 : value->AsUint("top field");
  };
  const auto double_at = [](const svc::JsonValue* value) -> double {
    return value == nullptr ? 0.0 : value->AsDouble("top field");
  };
  const auto ms = [](double ns) { return ns / 1e6; };

  const svc::JsonValue* queue = stats.Find("queue");
  const svc::JsonValue* rolling = stats.Find("rolling");
  const svc::JsonValue* rates = rolling != nullptr ? rolling->Find("rates") : nullptr;
  const svc::JsonValue* windows = rolling != nullptr ? rolling->Find("windows") : nullptr;
  const svc::JsonValue* window =
      windows != nullptr ? windows->Find("svc.latency_ns") : nullptr;
  const svc::JsonValue* cumulative = stats.Find("histograms") != nullptr
                                         ? stats.Find("histograms")->Find("svc.latency_ns")
                                         : nullptr;

  out << "commsched top - " << target;
  if (queue != nullptr) {
    out << "   workers " << uint_at(queue->Find("workers")) << "   draining "
        << (queue->Find("draining") != nullptr && queue->Find("draining")->AsBool("draining")
                ? "yes"
                : "no");
  }
  out << "\n";
  out << "  served " << uint_at(stats.Find("executed"));
  if (queue != nullptr) {
    out << "   inflight " << uint_at(queue->Find("running")) << "   queue "
        << uint_at(queue->Find("depth"));
  }
  if (rates != nullptr) {
    out << "   req/s " << double_at(rates->Find("svc.requests")) << "   err/s "
        << double_at(rates->Find("svc.errors"));
  }
  out << "\n";
  if (window != nullptr) {
    out << "  latency (10s window, " << uint_at(window->Find("count")) << " reqs): p50 "
        << ms(double_at(window->Find("p50"))) << " ms, p99 "
        << ms(double_at(window->Find("p99"))) << " ms";
  }
  if (cumulative != nullptr) {
    out << "   (lifetime p99 " << ms(double_at(cumulative->Find("p99"))) << " ms)";
  }
  if (window != nullptr || cumulative != nullptr) out << "\n";

  const auto cache_line = [&](const char* label, const svc::JsonValue* cache) {
    if (cache == nullptr) return;
    const std::uint64_t hits = uint_at(cache->Find("hits"));
    const std::uint64_t misses = uint_at(cache->Find("misses"));
    const std::uint64_t total = hits + misses;
    out << "  " << label << " cache: " << hits << "/" << total << " hits";
    if (total > 0) {
      out << " (" << 100.0 * static_cast<double>(hits) / static_cast<double>(total) << "%)";
    }
    out << ", size " << uint_at(cache->Find("size")) << "/" << uint_at(cache->Find("capacity"))
        << "\n";
  };
  cache_line("topology", stats.Find("topology_cache"));
  cache_line("result", stats.Find("result_cache"));

  const svc::JsonValue* ops = stats.Find("ops");
  if (ops != nullptr && ops->is_object() && !ops->AsObject("ops").empty()) {
    std::vector<std::pair<std::string, std::uint64_t>> counts;
    for (const auto& [name, value] : ops->AsObject("ops")) {
      counts.emplace_back(name, value.AsUint("ops." + name));
    }
    std::sort(counts.begin(), counts.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    out << "  ops:";
    for (const auto& [name, count] : counts) out << " " << name << "=" << count;
    out << "\n";
  }

  const svc::JsonValue* slow = stats.Find("slow");
  if (slow != nullptr && slow->is_array() && !slow->AsArray("slow").empty()) {
    out << "  slow requests (latest last):\n";
    for (const svc::JsonValue& record : slow->AsArray("slow")) {
      out << "   ";
      for (const auto& [key, value] : record.AsObject("slow record")) {
        out << " " << key << "=";
        if (value.is_string()) {
          out << value.AsString(key);
        } else if (value.is_bool()) {
          out << (value.AsBool(key) ? "true" : "false");
        } else {
          out << value.AsDouble(key);
        }
      }
      out << "\n";
    }
  }
}

int CmdTop(const Args& args) {
  const std::string target = args.Get("connect", "");
  if (target.empty()) throw ConfigError("top requires --connect [HOST:]PORT");
  const std::size_t interval_ms = args.GetSize("interval-ms", 1000);
  const bool once = args.Has("once");
  svc::InstallDrainSignalHandlers();  // ctrl-C exits the loop cleanly
  while (true) {
    const std::string response = TcpJsonRequest(target, R"({"id":"top","op":"stats"})");
    const svc::JsonValue stats = svc::ParseJson(response);
    const svc::JsonValue* ok = stats.Find("ok");
    if (ok == nullptr || !ok->AsBool("ok")) {
      throw ConfigError("stats request failed: " + response);
    }
    std::ostringstream frame;
    RenderTopFrame(target, stats, frame);
    if (!once) std::cout << "\x1b[2J\x1b[H";  // clear + home between refreshes
    std::cout << frame.str() << std::flush;
    if (once || svc::DrainSignalled()) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    if (svc::DrainSignalled()) return 0;
  }
}

int Usage() {
  std::cerr <<
      "usage: commsched_cli <topo|distance|schedule|simulate|experiment|report|serve|"
      "route|top> [--flags]\n"
      "  topo       generate/describe a topology (--kind random|rings|mixed|mesh|torus|\n"
      "             torus3d|fattree|hypercube|file, --switches N, --seed S,\n"
      "             --x/--y/--z torus3d dims, --k fat-tree arity, --dot)\n"
      "  distance   equivalent-distance table as CSV (--hops for hop counts)\n"
      "  schedule   search for a mapping + quality coefficients (--apps K, --seeds N,\n"
      "             --algo tabu|sd|random|sa|gsa, --parallel-seeds, --dot);\n"
      "             --multilevel maps a generated process graph instead:\n"
      "             --procs N processes, --pattern ring|grid|random,\n"
      "             --pattern-seed S, --coarsen-target N, --refine-budget B,\n"
      "             --distance resistance|hops (hops scales to 1k+ switches)\n"
      "  simulate   load sweep for a mapping (--mapping op|random|blocked,\n"
      "             --parallel-seeds for the op search, --vcs V,\n"
      "             --adaptive, --duato, --points P, --max-rate R,\n"
      "             --sim-mode cycle|event selects the execution engine\n"
      "             (statistically equivalent; event skips idle cycles),\n"
      "             --telemetry N\n"
      "             to sample deep network telemetry every N measured cycles;\n"
      "             --fault-plan F replays a JSON schedule of link/switch\n"
      "             failures mid-run, --reconfig-downtime N sets the routing\n"
      "             pause after each fault)\n"
      "  experiment full paper experiment: OP vs random mappings (--randoms K,\n"
      "             --parallel-seeds, --sim-mode cycle|event)\n"
      "  report     analyse a JSONL trace: latency percentiles, hottest links,\n"
      "             per-seed convergence (--trace F, --metrics-file F, --csv F,\n"
      "             --top K)\n"
      "  serve      scheduling daemon: JSONL requests on stdin -> responses on\n"
      "             stdout (or --listen [PORT] for TCP on 127.0.0.1; PORT 0 or\n"
      "             omitted = ephemeral, announced on stdout). --workers N,\n"
      "             --queue N admission capacity, --deadline-ms N default\n"
      "             deadline, --topo-cache N, --result-cache N. SIGTERM/SIGINT\n"
      "             or stdin EOF drains: every admitted request is answered,\n"
      "             then the process exits 0. See DESIGN.md section 10.\n"
      "             Observability (DESIGN.md section 12): the TCP listener\n"
      "             also answers HTTP GET /metrics (Prometheus), /health and\n"
      "             /ready; --slow-ms N logs requests slower than N ms\n"
      "             (--slow-log F appends them to F as JSONL, --slow-log-\n"
      "             capacity N bounds the in-memory tail); --allow-stats-reset\n"
      "             enables the stats op's {\"reset\":true} variant;\n"
      "             --no-windowed-metrics disables the rolling 10 s views;\n"
      "             --store-dir D persists solved network models to D and\n"
      "             warm-boots from it on restart (DESIGN.md section 14)\n"
      "  route      consistent-hash front for a daemon fleet: forwards stdin\n"
      "             JSONL frames to the shard owning each request's topology\n"
      "             hash and relays responses in order. --fleet HOST:PORT,\n"
      "             HOST:PORT,... lists the daemons, --vnodes N virtual nodes\n"
      "             per daemon (default 64). See DESIGN.md section 14.\n"
      "  top        live dashboard for a serving daemon: --connect [HOST:]PORT,\n"
      "             --interval-ms N refresh period (default 1000), --once\n"
      "             prints a single frame and exits (scripting/tests)\n"
      "observability flags (any command):\n"
      "  --trace F        write a JSONL event trace (search moves, sim milestones,\n"
      "                   net.sample telemetry) to F\n"
      "  --metrics        print the counter/timer/histogram registry as one JSON\n"
      "                   line at the end\n"
      "  --metrics-out F  write the registry JSON to F (readable by report)\n"
      "  --chrome-trace F write a Chrome trace-event span profile to F\n";
  return 2;
}

int Dispatch(const std::string& command, const Args& args) {
  if (command == "topo") return CmdTopo(args);
  if (command == "distance") return CmdDistance(args);
  if (command == "schedule") return CmdSchedule(args);
  if (command == "simulate") return CmdSimulate(args);
  if (command == "experiment") return CmdExperiment(args);
  if (command == "report") return CmdReport(args);
  if (command == "serve") return CmdServe(args);
  if (command == "route") return CmdRoute(args);
  if (command == "top") return CmdTop(args);
  return Usage();
}

/// Fails fast (typed ConfigError, exit 1) if an output path cannot be
/// written, instead of discovering it after a long run. Opens in append
/// mode so an existing file is not clobbered by the check.
void RequireWritable(const std::string& flag, const std::string& path) {
  if (path.empty()) throw ConfigError("--" + flag + " requires a file path");
  std::ofstream probe(path, std::ios::out | std::ios::app);
  if (!probe) {
    throw ConfigError("cannot open " + flag + " file '" + path + "' for writing");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  try {
    const Args args(argc, argv);
    std::unique_ptr<obs::Tracer> tracer;
    std::optional<obs::ScopedTracer> scoped_tracer;
    if (args.Has("trace") && command != "report") {
      const std::string path = args.Get("trace", "");
      if (path.empty()) throw ConfigError("--trace requires a file path");
      tracer = obs::Tracer::OpenFile(path);
      scoped_tracer.emplace(*tracer);
    }
    obs::SpanCollector spans;
    std::optional<obs::ScopedSpanCollector> scoped_spans;
    if (args.Has("chrome-trace")) {
      RequireWritable("chrome-trace", args.Get("chrome-trace", ""));
      scoped_spans.emplace(spans);
    }
    if (args.Has("metrics-out")) {
      RequireWritable("metrics-out", args.Get("metrics-out", ""));
    }
    const int rc = Dispatch(command, args);
    scoped_tracer.reset();  // uninstall before the file closes
    if (tracer != nullptr) tracer->Flush();
    scoped_spans.reset();
    if (rc == 0 && args.Has("chrome-trace")) {
      const std::string path = args.Get("chrome-trace", "");
      std::ofstream out(path);
      if (!out) throw ConfigError("cannot open chrome trace file '" + path + "'");
      spans.WriteChromeTrace(out);
    }
    if (rc == 0 && args.Has("metrics-out")) {
      const std::string path = args.Get("metrics-out", "");
      if (path.empty()) throw ConfigError("--metrics-out requires a file path");
      std::ofstream out(path);
      if (!out) throw ConfigError("cannot open metrics file '" + path + "'");
      out << obs::Registry::Global().ToJson() << "\n";
    }
    if (rc == 0 && args.Has("metrics")) {
      std::cout << obs::Registry::Global().ToJson() << "\n";
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
